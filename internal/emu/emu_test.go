package emu

import (
	"strings"
	"testing"

	"vca/internal/asm"
	"vca/internal/isa"
	"vca/internal/program"
)

func build(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, cfg Config) *Machine {
	t.Helper()
	m := New(build(t, src), cfg)
	reason, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reason != StopExited {
		t.Fatalf("stopped for %v, want exit", reason)
	}
	return m
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 = 55.
	m := run(t, `
main:   li   t0, 10
        li   t1, 0
loop:   add  t1, t1, t0
        subi t0, t0, 1
        bgt  t0, loop
        mov  a0, t1
        syscall 2      ; print int
        li   a0, 0
        syscall 0
`, Config{})
	if got := m.Output.String(); got != "55" {
		t.Errorf("output %q, want 55", got)
	}
	if _, code := m.Exited(); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
main:   la  t0, arr
        ldq t1, 0(t0)
        ldq t2, 8(t0)
        add t1, t1, t2
        stq t1, 16(t0)
        ldl t3, 24(t0)     ; sign-extends -1
        add a0, t1, t3
        syscall 2
        syscall 0
        .data
arr:    .quad 40, 2, 0
        .long 0xFFFFFFFF   ; -1 as a signed 32-bit load
`, Config{})
	if got := m.Output.String(); got != "41" {
		t.Errorf("output %q, want 41", got)
	}
}

func TestByteOpsAndString(t *testing.T) {
	m := run(t, `
main:   la   a0, msg
        li   a1, 5
        syscall 4
        la   t0, msg
        ldbu a0, 1(t0)     ; 'e' = 101
        syscall 2
        stb  zero, 0(t0)
        ldbu a0, 0(t0)
        syscall 2
        syscall 0
        .data
msg:    .ascii "hello"
`, Config{})
	if got := m.Output.String(); got != "hello1010" {
		t.Errorf("output %q", got)
	}
}

const fibSrc = `
; Recursive fib(12) = 144, flat ABI (explicit callee saves).
main:   li   a0, 12
        jsr  fib
        mov  a0, v0
        syscall 2
        li   a0, 0
        syscall 0
fib:    cmplei t0, a0, 1
        beq  t0, rec
        mov  v0, a0
        ret
rec:    subi sp, sp, 24
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        mov  s0, a0
        subi a0, a0, 1
        jsr  fib
        mov  s1, v0
        subi a0, s0, 2
        jsr  fib
        add  v0, v0, s1
        ldq  ra, 0(sp)
        ldq  s0, 8(sp)
        ldq  s1, 16(sp)
        addi sp, sp, 24
        ret
`

const fibWinSrc = `
; Recursive fib(12) = 144, windowed ABI: s0/s1 live in the window, no
; saves. Only ra (global) must be preserved, in the window? ra is global,
; so it goes to a windowed temp instead of memory.
main:   li   a0, 12
        jsr  fib
        mov  a0, v0
        syscall 2
        li   a0, 0
        syscall 0
fib:    cmplei t0, a0, 1
        beq  t0, rec
        mov  v0, a0
        ret
rec:    mov  s2, ra        ; stash return address in this window
        mov  s0, a0
        subi a0, a0, 1
        jsr  fib
        mov  s1, v0
        subi a0, s0, 2
        jsr  fib
        add  v0, v0, s1
        mov  ra, s2
        ret
`

func TestRecursionFlatABI(t *testing.T) {
	m := run(t, fibSrc, Config{})
	if got := m.Output.String(); got != "144" {
		t.Errorf("fib output %q, want 144", got)
	}
	if m.Stats.Calls != m.Stats.Returns {
		t.Errorf("calls %d != returns %d", m.Stats.Calls, m.Stats.Returns)
	}
}

func TestRecursionWindowedABI(t *testing.T) {
	m := run(t, fibWinSrc, Config{Windowed: true})
	if got := m.Output.String(); got != "144" {
		t.Errorf("windowed fib output %q, want 144", got)
	}
	if m.Stats.MaxCallDepth < 11 {
		t.Errorf("max call depth %d, want >= 11", m.Stats.MaxCallDepth)
	}
	// The windowed version executes fewer instructions (no save/restore
	// loads/stores) — the Table 2 effect.
	flat := run(t, fibSrc, Config{})
	if m.Stats.Insts >= flat.Stats.Insts {
		t.Errorf("windowed path length %d not shorter than flat %d",
			m.Stats.Insts, flat.Stats.Insts)
	}
	if m.Stats.Loads+m.Stats.Stores >= flat.Stats.Loads+flat.Stats.Stores {
		t.Error("windowed ABI should do less memory traffic")
	}
	// Identical conditional-branch counts (the paper's alignment check).
	if m.Stats.CondBranches != flat.Stats.CondBranches {
		t.Errorf("cond branches differ: windowed %d flat %d",
			m.Stats.CondBranches, flat.Stats.CondBranches)
	}
}

func TestWindowIsolation(t *testing.T) {
	// Callee clobbers every windowed register; caller's survive.
	m := run(t, `
main:   li   s0, 111
        li   s5, 555
        jsr  clobber
        add  a0, s0, s5
        syscall 2
        syscall 0
clobber:
        li s0, 9
        li s1, 9
        li s5, 9
        li s15, 9
        ret
`, Config{Windowed: true})
	if got := m.Output.String(); got != "666" {
		t.Errorf("windowed registers not isolated: %q", got)
	}
}

func TestFlatMachineSharesWindowedRegs(t *testing.T) {
	// Same program without windows: callee clobbers caller's s-regs.
	m := run(t, `
main:   li   s0, 111
        jsr  clobber
        mov  a0, s0
        syscall 2
        syscall 0
clobber:
        li s0, 9
        ret
`, Config{})
	if got := m.Output.String(); got != "9" {
		t.Errorf("flat machine should share s-regs: %q", got)
	}
}

func TestFloatPipeline(t *testing.T) {
	m := run(t, `
main:   la   t0, vals
        ldf  fs0, 0(t0)
        ldf  fs1, 8(t0)
        fmul fs2, fs0, fs1
        fsqrt fs3, fs2
        fcmplt t1, fs3, fs0
        mov  a0, t1
        syscall 2
        fmov fa0, fs3
        syscall 3
        syscall 0
        .data
vals:   .double 4.0, 9.0
`, Config{})
	// sqrt(36)=6, 6<4 false -> "0", then "6".
	if got := m.Output.String(); got != "06" {
		t.Errorf("output %q, want 06", got)
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	m := run(t, `
main:   la   t0, target
        jsrr t0
        la   t1, done
        jmpr t1
        syscall 2          ; skipped
done:   li   a0, 7
        syscall 2
        syscall 0
target: li   a0, 3
        syscall 2
        ret
`, Config{})
	if got := m.Output.String(); got != "37" {
		t.Errorf("output %q, want 37", got)
	}
}

func TestCvtRoundTrip(t *testing.T) {
	m := run(t, `
main:   li    t0, -41
        cvtif fs0, t0
        la    t1, one
        ldf   fs1, 0(t1)
        fsub  fs0, fs0, fs1
        cvtfi a0, fs0
        syscall 2
        syscall 0
        .data
one:    .double 1.0
`, Config{})
	if got := m.Output.String(); got != "-42" {
		t.Errorf("output %q, want -42", got)
	}
}

func TestStepInfoReporting(t *testing.T) {
	m := New(build(t, `
main:   li  t0, 5
        stq t0, 0(sp)
        syscall 0
`), Config{})
	info, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if info.Dest != isa.RegT0 || info.DestVal != 5 {
		t.Errorf("li step info: %+v", info)
	}
	info, err = m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsStore || info.Addr != program.StackTop || info.DestVal != 5 {
		t.Errorf("store step info: %+v", info)
	}
}

func TestRunawayGuard(t *testing.T) {
	m := New(build(t, "main: jmp main"), Config{MaxInsts: 1000})
	reason, err := m.Run()
	if err != nil || reason != StopMaxInsts {
		t.Errorf("runaway: reason %v err %v", reason, err)
	}
}

func TestWindowUnderflowDetected(t *testing.T) {
	m := New(build(t, "main: ret"), Config{Windowed: true})
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("expected underflow error, got %v", err)
	}
}

func TestErrorOnExitedStep(t *testing.T) {
	m := run(t, "main: syscall 0", Config{})
	if _, err := m.Step(); err == nil {
		t.Error("step after exit should error")
	}
}

func TestPCOutsideText(t *testing.T) {
	m := New(build(t, "main: ret"), Config{}) // returns to sp=0... ra=0
	_, err := m.Run()
	if err == nil {
		t.Error("expected pc-out-of-text error")
	}
}
