// The fast functional engine: a predecoded, operand-resolved micro-op
// array driven by a tight switch-dispatch loop. Step/StepInto remain the
// reference interpreter (and the co-simulation oracle); FastRun is the
// throughput path used for fast-forward warmup and for manufacturing
// region checkpoints, and is differentially tested against StepInto
// instruction-by-instruction (fast_test.go).
//
// Predecode resolves, once per static instruction, everything StepInto
// re-derives per dynamic instruction: register operands become direct
// frame/global slot indices (regSlot applied at build time), pc-relative
// control targets are pre-linked to absolute addresses, the hottest ALU
// shapes and all six branch conditions get their own dispatch kinds so
// the common path never calls EvalALU or BranchTaken, and window
// push/pop is specialized into the call/ret cases. The loop keeps its
// statistics in locals and flushes them on exit, so steady-state
// execution performs no per-instruction allocation at all (enforced by
// TestFastRunZeroAlloc).
package emu

import (
	"fmt"

	"vca/internal/isa"
)

// fastKind is the dispatch code of one predecoded micro-op.
type fastKind uint8

const (
	// fkInvalid marks an undecodable word: executing it reproduces
	// StepInto's "invalid instruction" error (no instruction counted).
	fkInvalid fastKind = iota
	// fkUnhandled marks a valid opcode whose class the interpreter does
	// not execute; it counts the instruction and then errors, exactly as
	// StepInto's default case does.
	fkUnhandled
	fkALU    // generic integer reg-reg ALU via EvalALU
	fkALUImm // generic integer reg-imm ALU via EvalALU
	fkALUFP  // generic floating-point ALU via EvalALU
	fkAdd    // specialized: add
	fkAddImm // specialized: addi
	fkSub    // specialized: sub
	fkLoad   // memory load (size/sign in memBytes/memSigned)
	fkStore  // memory store
	fkBeq    // specialized branches: condition inline, target pre-linked
	fkBne
	fkBlt
	fkBle
	fkBgt
	fkBge
	fkJump    // direct jump, target pre-linked
	fkJumpInd // register-indirect jump
	fkCall    // direct call: writes ra, pushes a window frame if windowed
	fkCallInd // register-indirect call
	fkRet     // return: pops a window frame if windowed
	fkSyscall // syscall, code in imm
)

// fastOp is one predecoded micro-op. Operand fields hold resolved regSlot
// indices (-1 = zero register / absent: reads yield 0, writes discard).
// imm is overloaded by kind: the ALU immediate operand, the sign-extended
// memory displacement, the pre-linked absolute control target, or the
// syscall code.
type fastOp struct {
	imm        uint64
	op         isa.Op
	kind       fastKind
	srcA, srcB int8
	dest       int8
	memBytes   uint8
	memSigned  bool
}

// buildFast predecodes the program text into the micro-op array. The
// array is built lazily on the first FastRun and is immutable afterwards
// (text never changes).
func (m *Machine) buildFast() {
	ops := make([]fastOp, len(m.text))
	for i := range m.text {
		inst := m.text[i]
		mt := &m.meta[i]
		pc := m.prog.TextBase + uint64(i)*4
		f := &ops[i]
		f.op = inst.Op
		if !inst.Op.Valid() {
			f.kind = fkInvalid
			continue
		}
		switch mt.Class {
		case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
			isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv:
			f.srcA = regSlot[mt.SrcA]
			f.srcB = regSlot[mt.SrcB]
			f.dest = regSlot[mt.Dest]
			fp := mt.Class > isa.ClassIntDiv
			switch {
			case mt.HasImm:
				f.imm = mt.Imm
				if inst.Op == isa.OpAddI {
					f.kind = fkAddImm
				} else {
					f.kind = fkALUImm
				}
			case fp:
				f.kind = fkALUFP
			case inst.Op == isa.OpAdd:
				f.kind = fkAdd
			case inst.Op == isa.OpSub:
				f.kind = fkSub
			default:
				f.kind = fkALU
			}
		case isa.ClassLoad:
			f.kind = fkLoad
			f.srcA = regSlot[mt.SrcA]
			f.dest = regSlot[mt.Dest]
			f.imm = uint64(int64(inst.Imm))
			f.memBytes = mt.MemBytes
			f.memSigned = mt.MemSigned
		case isa.ClassStore:
			f.kind = fkStore
			f.srcA = regSlot[mt.SrcA]
			f.srcB = regSlot[mt.SrcB]
			f.imm = uint64(int64(inst.Imm))
			f.memBytes = mt.MemBytes
		case isa.ClassBranch:
			f.srcA = regSlot[mt.SrcA]
			f.imm, _ = inst.ControlTarget(pc)
			switch inst.Op {
			case isa.OpBeq:
				f.kind = fkBeq
			case isa.OpBne:
				f.kind = fkBne
			case isa.OpBlt:
				f.kind = fkBlt
			case isa.OpBle:
				f.kind = fkBle
			case isa.OpBgt:
				f.kind = fkBgt
			case isa.OpBge:
				f.kind = fkBge
			default:
				f.kind = fkUnhandled
			}
		case isa.ClassJump:
			if inst.Op == isa.OpJmp {
				f.kind = fkJump
				f.imm, _ = inst.ControlTarget(pc)
			} else {
				f.kind = fkJumpInd
				f.srcA = regSlot[mt.SrcA]
			}
		case isa.ClassCall:
			if inst.Op == isa.OpJsr {
				f.kind = fkCall
				f.imm, _ = inst.ControlTarget(pc)
			} else {
				f.kind = fkCallInd
				f.srcA = regSlot[mt.SrcA]
			}
			f.dest = regSlot[isa.RegRA]
		case isa.ClassRet:
			f.kind = fkRet
			f.srcA = regSlot[mt.SrcA]
		case isa.ClassSyscall:
			f.kind = fkSyscall
			f.imm = uint64(int64(inst.Imm))
		default:
			f.kind = fkUnhandled
		}
	}
	m.fast = ops
}

// rslot reads a resolved register slot (-1 = zero register).
func (m *Machine) rslot(s int8) uint64 {
	if s < 0 {
		return 0
	}
	if s < isa.WindowSlots {
		return m.cur[s]
	}
	return m.globals[s-isa.WindowSlots]
}

// wslot writes a resolved register slot (-1 discards).
func (m *Machine) wslot(s int8, v uint64) {
	if s < 0 {
		return
	}
	if s < isa.WindowSlots {
		m.cur[s] = v
		*m.curMask |= 1 << uint(s)
		return
	}
	m.globals[s-isa.WindowSlots] = v
}

// FastRun executes up to n instructions through the predecoded engine and
// returns how many actually executed. It stops early — with executed < n
// and a nil error — when the program exits; it stops with an error on
// exactly the conditions StepInto errors on (invalid instruction, pc
// outside text, window underflow, bad syscall), leaving the machine in
// the same state the interpreter would. Architectural state, statistics,
// and output after FastRun(n) are bit-identical to n StepInto calls
// (enforced by the lockstep differential test). FastRun ignores
// Config.MaxInsts: the caller's n is the budget.
func (m *Machine) FastRun(n uint64) (executed uint64, err error) {
	if m.exited {
		return 0, fmt.Errorf("emu: program has exited")
	}
	if m.fast == nil {
		m.buildFast()
	}
	var (
		ops  = m.fast
		base = m.prog.TextBase
		pc   = m.pc
		mmem = m.mem

		insts, intOps, fpOps  uint64
		loads, stores         uint64
		condBr, takenBr       uint64
		calls, rets, syscalls uint64
	)
	// Locals are flushed on every exit path, including errors, so partial
	// progress is always visible — same as stepping individually.
	defer func() {
		m.pc = pc
		m.Stats.Insts += insts
		m.Stats.IntOps += intOps
		m.Stats.FPOps += fpOps
		m.Stats.Loads += loads
		m.Stats.Stores += stores
		m.Stats.CondBranches += condBr
		m.Stats.TakenCond += takenBr
		m.Stats.Calls += calls
		m.Stats.Returns += rets
		m.Stats.Syscalls += syscalls
	}()

	for executed < n {
		idx := (pc - base) >> 2
		if idx >= uint64(len(ops)) || pc&3 != 0 {
			return executed, fmt.Errorf("emu: pc %#x outside text (%s)", pc, m.prog.SymbolFor(pc))
		}
		f := &ops[idx]
		switch f.kind {
		case fkAddImm:
			m.wslot(f.dest, m.rslot(f.srcA)+f.imm)
			intOps++
			pc += 4
		case fkAdd:
			m.wslot(f.dest, m.rslot(f.srcA)+m.rslot(f.srcB))
			intOps++
			pc += 4
		case fkSub:
			m.wslot(f.dest, m.rslot(f.srcA)-m.rslot(f.srcB))
			intOps++
			pc += 4
		case fkALU:
			m.wslot(f.dest, isa.EvalALU(f.op, m.rslot(f.srcA), m.rslot(f.srcB)))
			intOps++
			pc += 4
		case fkALUImm:
			m.wslot(f.dest, isa.EvalALU(f.op, m.rslot(f.srcA), f.imm))
			intOps++
			pc += 4
		case fkALUFP:
			m.wslot(f.dest, isa.EvalALU(f.op, m.rslot(f.srcA), m.rslot(f.srcB)))
			fpOps++
			pc += 4

		case fkLoad:
			raw := mmem.Read(m.rslot(f.srcA)+f.imm, int(f.memBytes))
			if f.memSigned {
				raw = uint64(int64(int32(raw)))
			}
			m.wslot(f.dest, raw)
			loads++
			pc += 4
		case fkStore:
			mmem.Write(m.rslot(f.srcA)+f.imm, int(f.memBytes), m.rslot(f.srcB))
			stores++
			pc += 4

		case fkBeq:
			condBr++
			if int64(m.rslot(f.srcA)) == 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}
		case fkBne:
			condBr++
			if int64(m.rslot(f.srcA)) != 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}
		case fkBlt:
			condBr++
			if int64(m.rslot(f.srcA)) < 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}
		case fkBle:
			condBr++
			if int64(m.rslot(f.srcA)) <= 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}
		case fkBgt:
			condBr++
			if int64(m.rslot(f.srcA)) > 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}
		case fkBge:
			condBr++
			if int64(m.rslot(f.srcA)) >= 0 {
				takenBr++
				pc = f.imm
			} else {
				pc += 4
			}

		case fkJump:
			pc = f.imm
		case fkJumpInd:
			pc = m.rslot(f.srcA)

		case fkCall:
			m.wslot(f.dest, pc+4)
			m.pushWindow()
			calls++
			pc = f.imm
		case fkCallInd:
			t := m.rslot(f.srcA)
			m.wslot(f.dest, pc+4)
			m.pushWindow()
			calls++
			pc = t
		case fkRet:
			t := m.rslot(f.srcA)
			if m.cfg.Windowed {
				if m.depth == 0 {
					// Match popWindow's error (StepInto counts the
					// instruction before popping).
					insts++
					return executed, fmt.Errorf("emu: register window underflow at pc %#x", pc)
				}
				m.depth--
				m.cur = &m.windows[m.depth]
				m.curMask = &m.wmask[m.depth]
			}
			rets++
			pc = t

		case fkSyscall:
			// syscall reads registers and reports errors against m.pc.
			m.pc = pc
			if err := m.syscall(int32(f.imm)); err != nil {
				insts++ // StepInto counts the instruction before the error
				return executed, err
			}
			syscalls++
			insts++
			executed++
			pc += 4
			if m.exited {
				return executed, nil
			}
			continue

		case fkInvalid:
			return executed, fmt.Errorf("emu: invalid instruction at %#x (%s)", pc, m.prog.SymbolFor(pc))
		default: // fkUnhandled
			insts++
			return executed, fmt.Errorf("emu: unhandled class for %v at %#x", f.op, pc)
		}
		insts++
		executed++
	}
	return executed, nil
}
