// Package emu is the functional (in-order, one-instruction-per-step)
// reference implementation of the ISA. It plays two of the paper's
// methodological roles and one this reproduction adds:
//
//   - Path-length measurement (§3.1, Table 2). The paper's "fast
//     functional simulation" measures the complete dynamic instruction
//     count of each binary; the windowed/flat ratio of those counts is
//     Table 2, and the estimated-execution-time metric of every figure
//     is CPI × this full path length. Stats records the counts, and
//     window save/restore traffic is simulated architecturally (a frame
//     stack per window depth) so windowed and flat runs of one source
//     program produce identical outputs with different path lengths.
//   - Golden model for co-simulation. The out-of-order core steps a
//     private emulator instance in lockstep at commit and cross-checks
//     PC, destination value, store address/data, and control targets
//     (StepInfo carries the per-instruction facts). Any divergence —
//     wrong-path leakage, a rename bug, a mis-applied spill — fails the
//     run immediately rather than corrupting statistics silently. This
//     is the repository's strongest end-to-end check that the VCA
//     machinery is "complete and functionally correct" (§2.2).
//   - Workload calibration. Per-benchmark dynamic statistics
//     (conditional-branch counts, memory mix, call depth) become the
//     feature vectors the §3.2 clustering pipeline (internal/cluster)
//     selects SMT workloads from.
//
// The emulator is deliberately microarchitecture-free: no caches, no
// predictor, no timing — one architectural step per instruction, with
// syscalls (print/exit) applied immediately. Determinism here anchors
// determinism everywhere else: both rename substrates must commit the
// architectural state this package computes.
package emu

import (
	"bytes"
	"fmt"
	"math"

	"vca/internal/isa"
	"vca/internal/mem"
	"vca/internal/program"
)

// Config controls functional execution.
type Config struct {
	// Windowed selects register-window semantics: calls and returns
	// rotate the windowed register subset (r0-r15/f0-f15). Run windowed
	// binaries with Windowed=true and flat binaries with false.
	Windowed bool
	// StackTop is the initial stack pointer (default program.StackTop).
	StackTop uint64
	// MaxInsts aborts runaway programs (default 2^40).
	MaxInsts uint64
}

// StopReason says why Run returned.
type StopReason int

const (
	StopExited StopReason = iota
	StopMaxInsts
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopExited:
		return "exited"
	case StopMaxInsts:
		return "max-instructions"
	case StopError:
		return "error"
	}
	return "?"
}

// Stats are the dynamic execution statistics the clustering methodology
// (§3.2) and Table 2 consume.
type Stats struct {
	Insts        uint64
	CondBranches uint64
	TakenCond    uint64
	Loads        uint64
	Stores       uint64
	Calls        uint64
	Returns      uint64
	FPOps        uint64
	IntOps       uint64
	MaxCallDepth int
	Syscalls     uint64
}

// frame is one register-window frame of functional state.
type frame [isa.WindowSlots]uint64

// Machine is a functional processor state bound to one program.
type Machine struct {
	cfg  Config
	prog *program.Program
	mem  *mem.Memory
	text []isa.Inst
	meta []isa.Meta // predecoded operand/class view, index-aligned with text
	fast []fastOp   // FastRun's micro-op array, built lazily (fast.go)

	pc      uint64
	globals [isa.GlobalSlots]uint64
	// Windowed machines keep a logical stack of window frames; flat
	// machines use windows[0] only. cur caches &windows[depth] (always
	// &windows[0] when flat) and must be refreshed whenever depth moves
	// or the windows slice reallocates.
	windows []frame
	depth   int // index of current frame
	cur     *frame
	// wmask is index-aligned with windows: bit s of wmask[d] is set once
	// frame d's slot s has been written since the frame was pushed. It
	// distinguishes live slots from architecturally-dead ones (fresh
	// frames read as zero here, but a detailed machine may hold stale
	// junk in never-written slots); checkpoint extraction uses it to
	// canonicalize dead slots. curMask caches &wmask[depth].
	wmask   []uint32
	curMask *uint32

	Stats    Stats
	Output   bytes.Buffer
	exited   bool
	exitCode int64
}

// StepInfo reports everything one architectural step did; the cycle-level
// core compares committed instructions against it.
type StepInfo struct {
	PC      uint64
	Inst    isa.Inst
	Dest    isa.Reg // RegNone when no register result
	DestVal uint64
	IsStore bool
	Addr    uint64 // effective address for loads/stores
	Taken   bool   // control transfer taken
	NextPC  uint64
}

// New creates a machine, loads the program image, and initializes sp and
// the call stack.
func New(p *program.Program, cfg Config) *Machine {
	if cfg.StackTop == 0 {
		cfg.StackTop = program.StackTop
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 1 << 40
	}
	m := &Machine{
		cfg:     cfg,
		prog:    p,
		mem:     mem.NewMemory(),
		text:    p.Predecode(),
		meta:    p.Meta(),
		pc:      p.Entry,
		windows: make([]frame, 1, 64),
		wmask:   make([]uint32, 1, 64),
	}
	m.cur = &m.windows[0]
	m.curMask = &m.wmask[0]
	p.LoadInto(m.mem)
	m.WriteReg(isa.RegSP, cfg.StackTop)
	return m
}

// Mem exposes the functional memory (for co-simulation checks and
// examples that want to inspect results).
func (m *Machine) Mem() *mem.Memory { return m.mem }

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// Exited reports whether the program has executed the exit syscall, and
// with which status.
func (m *Machine) Exited() (bool, int64) { return m.exited, m.exitCode }

// CallDepth returns the current register-window depth (0 in the outermost
// frame). Flat machines always report 0.
func (m *Machine) CallDepth() int { return m.depth }

// regSlot flattens the ReadReg/WriteReg register classification into one
// table lookup: -1 for zero registers (and RegNone), window-frame slots
// as [0,WindowSlots), global slots offset by WindowSlots.
var regSlot = func() (t [256]int8) {
	for i := range t {
		t[i] = -1
	}
	for r := isa.Reg(0); r < isa.NumArchRegs; r++ {
		switch {
		case r.IsZero():
		case r.IsWindowed():
			t[r] = int8(r.WindowSlot())
		default:
			t[r] = int8(isa.WindowSlots + r.GlobalSlot())
		}
	}
	return
}()

// ReadReg returns the architectural value of r in the current context.
func (m *Machine) ReadReg(r isa.Reg) uint64 {
	s := regSlot[r]
	if s < 0 {
		return 0
	}
	if s < isa.WindowSlots {
		return m.cur[s]
	}
	return m.globals[s-isa.WindowSlots]
}

// WriteReg sets the architectural value of r in the current context.
// Writes to zero registers are discarded.
func (m *Machine) WriteReg(r isa.Reg, v uint64) {
	s := regSlot[r]
	if s < 0 {
		return
	}
	if s < isa.WindowSlots {
		m.cur[s] = v
		*m.curMask |= 1 << uint(s)
		return
	}
	m.globals[s-isa.WindowSlots] = v
}

func (m *Machine) pushWindow() {
	if !m.cfg.Windowed {
		return
	}
	m.depth++
	if m.depth == len(m.windows) {
		m.windows = append(m.windows, frame{})
		m.wmask = append(m.wmask, 0)
	} else {
		m.windows[m.depth] = frame{}
		m.wmask[m.depth] = 0
	}
	m.cur = &m.windows[m.depth]
	m.curMask = &m.wmask[m.depth]
	if m.depth > m.Stats.MaxCallDepth {
		m.Stats.MaxCallDepth = m.depth
	}
}

func (m *Machine) popWindow() error {
	if !m.cfg.Windowed {
		return nil
	}
	if m.depth == 0 {
		return fmt.Errorf("emu: register window underflow at pc %#x", m.pc)
	}
	m.depth--
	m.cur = &m.windows[m.depth]
	m.curMask = &m.wmask[m.depth]
	return nil
}

// Step executes one instruction and reports what it did.
func (m *Machine) Step() (StepInfo, error) {
	var info StepInfo
	err := m.StepInto(&info)
	return info, err
}

// StepInto is Step without the by-value StepInfo return: callers on hot
// paths (co-simulation steps once per committed instruction) reuse one
// StepInfo instead of copying ~100 bytes per step.
func (m *Machine) StepInto(info *StepInfo) error {
	if m.exited {
		*info = StepInfo{}
		return fmt.Errorf("emu: program has exited")
	}
	if !m.prog.InText(m.pc) {
		*info = StepInfo{}
		return fmt.Errorf("emu: pc %#x outside text (%s)", m.pc, m.prog.SymbolFor(m.pc))
	}
	idx := (m.pc - m.prog.TextBase) / 4
	inst := m.text[idx]
	mt := &m.meta[idx]
	*info = StepInfo{PC: m.pc, Inst: inst, Dest: isa.RegNone, NextPC: m.pc + 4}
	if !inst.Op.Valid() {
		return fmt.Errorf("emu: invalid instruction at %#x (%s)", m.pc, m.prog.SymbolFor(m.pc))
	}
	m.Stats.Insts++

	switch mt.Class {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv, isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv:
		a := m.ReadReg(mt.SrcA)
		var b uint64
		if mt.HasImm {
			b = mt.Imm
		} else {
			b = m.ReadReg(mt.SrcB)
		}
		v := isa.EvalALU(inst.Op, a, b)
		m.WriteReg(mt.Dest, v)
		info.Dest, info.DestVal = mt.Dest, v
		if mt.Class <= isa.ClassIntDiv {
			m.Stats.IntOps++
		} else {
			m.Stats.FPOps++
		}

	case isa.ClassLoad:
		addr := inst.MemEA(m.ReadReg(mt.SrcA))
		raw := m.mem.Read(addr, int(mt.MemBytes))
		if mt.MemSigned {
			raw = uint64(int64(int32(raw)))
		}
		m.WriteReg(mt.Dest, raw)
		info.Dest, info.DestVal, info.Addr = mt.Dest, raw, addr
		m.Stats.Loads++

	case isa.ClassStore:
		addr := inst.MemEA(m.ReadReg(mt.SrcA))
		v := m.ReadReg(mt.SrcB)
		size := int(mt.MemBytes)
		if size < 8 {
			v &= 1<<(8*size) - 1 // report the stored (truncated) value
		}
		m.mem.Write(addr, size, v)
		info.IsStore, info.Addr, info.DestVal = true, addr, v
		m.Stats.Stores++

	case isa.ClassBranch:
		m.Stats.CondBranches++
		if isa.BranchTaken(inst.Op, m.ReadReg(mt.SrcA)) {
			t, _ := inst.ControlTarget(m.pc)
			info.NextPC, info.Taken = t, true
			m.Stats.TakenCond++
		}

	case isa.ClassJump:
		if inst.Op == isa.OpJmp {
			t, _ := inst.ControlTarget(m.pc)
			info.NextPC = t
		} else {
			info.NextPC = m.ReadReg(mt.SrcA)
		}
		info.Taken = true

	case isa.ClassCall:
		ret := m.pc + 4
		var t uint64
		if inst.Op == isa.OpJsr {
			t, _ = inst.ControlTarget(m.pc)
		} else {
			t = m.ReadReg(mt.SrcA)
		}
		// ra is global, so it is written before the window rotates (and
		// would be visible either way).
		m.WriteReg(isa.RegRA, ret)
		m.pushWindow()
		info.Dest, info.DestVal = isa.RegRA, ret
		info.NextPC, info.Taken = t, true
		m.Stats.Calls++

	case isa.ClassRet:
		t := m.ReadReg(mt.SrcA)
		if err := m.popWindow(); err != nil {
			return err
		}
		info.NextPC, info.Taken = t, true
		m.Stats.Returns++

	case isa.ClassSyscall:
		if err := m.syscall(inst.Imm); err != nil {
			return err
		}
		m.Stats.Syscalls++

	default:
		return fmt.Errorf("emu: unhandled class for %v at %#x", inst.Op, m.pc)
	}

	m.pc = info.NextPC
	return nil
}

// Run executes until exit, error, or the instruction budget is exhausted.
func (m *Machine) Run() (StopReason, error) {
	var info StepInfo
	for m.Stats.Insts < m.cfg.MaxInsts {
		if err := m.StepInto(&info); err != nil {
			return StopError, err
		}
		if m.exited {
			return StopExited, nil
		}
	}
	return StopMaxInsts, nil
}

func (m *Machine) syscall(code int32) error {
	switch code {
	case isa.SysExit:
		m.exited = true
		m.exitCode = int64(m.ReadReg(isa.RegA0))
	case isa.SysPutChar:
		m.Output.WriteByte(byte(m.ReadReg(isa.RegA0)))
	case isa.SysPutInt:
		fmt.Fprintf(&m.Output, "%d", int64(m.ReadReg(isa.RegA0)))
	case isa.SysPutFloat:
		fmt.Fprintf(&m.Output, "%g", f64(m.ReadReg(isa.RegFA0)))
	case isa.SysPutStr:
		addr := m.ReadReg(isa.RegA0)
		n := int(m.ReadReg(isa.RegA1))
		if n < 0 || n > 1<<20 {
			return fmt.Errorf("emu: unreasonable putstr length %d", n)
		}
		m.Output.Write(m.mem.ReadBytes(addr, n))
	default:
		return fmt.Errorf("emu: unknown syscall %d at pc %#x", code, m.pc)
	}
	return nil
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
