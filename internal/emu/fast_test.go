package emu

import (
	"fmt"
	"math/rand"
	"testing"

	"vca/internal/asm"
	"vca/internal/progen"
	"vca/internal/program"
)

// compareMachines fails the test at the first architectural difference
// between the reference interpreter and the fast engine: pc, statistics,
// window depth, every live register, output, and exit state. Memory is
// compared only when deep is set (snapshotting is too expensive per
// step).
func compareMachines(t *testing.T, tag string, ref, fast *Machine, deep bool) {
	t.Helper()
	if ref.pc != fast.pc {
		t.Fatalf("%s: pc: interpreter %#x, fast %#x", tag, ref.pc, fast.pc)
	}
	if ref.Stats != fast.Stats {
		t.Fatalf("%s: stats: interpreter %+v, fast %+v", tag, ref.Stats, fast.Stats)
	}
	if ref.depth != fast.depth {
		t.Fatalf("%s: depth: interpreter %d, fast %d", tag, ref.depth, fast.depth)
	}
	if ref.globals != fast.globals {
		t.Fatalf("%s: globals diverged", tag)
	}
	for d := 0; d <= ref.depth; d++ {
		if ref.windows[d] != fast.windows[d] {
			t.Fatalf("%s: window frame %d diverged", tag, d)
		}
		if ref.wmask[d] != fast.wmask[d] {
			t.Fatalf("%s: window write mask %d: interpreter %#x, fast %#x", tag, d, ref.wmask[d], fast.wmask[d])
		}
	}
	if ref.Output.String() != fast.Output.String() {
		t.Fatalf("%s: output: interpreter %q, fast %q", tag, ref.Output.String(), fast.Output.String())
	}
	re, rc := ref.Exited()
	fe, fc := fast.Exited()
	if re != fe || rc != fc {
		t.Fatalf("%s: exit state: interpreter (%v,%d), fast (%v,%d)", tag, re, rc, fe, fc)
	}
	if deep && !ref.mem.EqualContents(fast.mem) {
		t.Fatalf("%s: memory diverged", tag)
	}
}

// lockstep drives the same program through StepInto and FastRun(1) and
// compares full architectural state after every instruction, then does a
// final deep (memory) comparison.
func lockstep(t *testing.T, prog *program.Program, windowed bool, budget int) {
	t.Helper()
	ref := New(prog, Config{Windowed: windowed})
	fast := New(prog, Config{Windowed: windowed})
	var info StepInfo
	for i := 0; i < budget; i++ {
		errR := ref.StepInto(&info)
		_, errF := fast.FastRun(1)
		if (errR == nil) != (errF == nil) {
			t.Fatalf("step %d: interpreter err %v, fast err %v", i, errR, errF)
		}
		if errR != nil {
			if errR.Error() != errF.Error() {
				t.Fatalf("step %d: error text: interpreter %q, fast %q", i, errR, errF)
			}
			break
		}
		compareMachines(t, fmt.Sprintf("step %d (pc %#x)", i, info.PC), ref, fast, false)
		if ex, _ := ref.Exited(); ex {
			break
		}
	}
	compareMachines(t, "final", ref, fast, true)
}

// TestFastRunLockstepProgen differentially tests FastRun against the
// reference interpreter instruction-by-instruction over randomly
// generated programs, in both ABI variants (progen output is dual-ABI
// safe: the same source runs flat and windowed).
func TestFastRunLockstepProgen(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		gcfg := progen.Config{Helpers: 3, WindowLadder: 5, Recursion: true,
			MaxRecDepth: 6, Blocks: 24, Loops: true, Aliasing: true}
		src := progen.Generate(r, gcfg)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		for _, windowed := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed%d/windowed=%v", seed, windowed), func(t *testing.T) {
				lockstep(t, prog, windowed, 50_000)
			})
		}
	}
}

// TestFastRunBatchEquivalence runs the fast engine in large batches (the
// way fast-forward uses it) and checks the end state matches a pure
// StepInto run — catching anything that only breaks across batch
// boundaries (stat flushing, pc handoff, window state caching).
func TestFastRunBatchEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		src := progen.FromSeed(seed)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		for _, windowed := range []bool{false, true} {
			ref := New(prog, Config{Windowed: windowed})
			fast := New(prog, Config{Windowed: windowed})
			var info StepInfo
			total := uint64(0)
			for _, batch := range []uint64{1, 7, 97, 1000, 100_000} {
				ran, err := fast.FastRun(batch)
				if err != nil {
					t.Fatalf("FastRun: %v", err)
				}
				for i := uint64(0); i < ran; i++ {
					if err := ref.StepInto(&info); err != nil {
						t.Fatalf("StepInto: %v", err)
					}
				}
				total += ran
				compareMachines(t, fmt.Sprintf("after batch of %d (windowed=%v)", batch, windowed), ref, fast, true)
				if ran < batch {
					break // program exited
				}
			}
			if total == 0 {
				t.Fatal("no instructions executed")
			}
		}
	}
}

// TestFastRunZeroAlloc pins the fast engine's steady-state allocation
// behavior: once the micro-op array is built and the working set is
// touched, FastRun allocates nothing per instruction. This is the
// functional-engine mirror of the detailed core's 0.05 allocs/inst CI
// floor — but the floor here is exactly zero.
func TestFastRunZeroAlloc(t *testing.T) {
	// A pure compute loop that never exits (FastRun's budget bounds it):
	// no syscalls, since output formatting allocates.
	src := `
	.text
main:
	addi t0, zero, 0
loop:
	addi t0, t0, 1
	add  t1, t0, t0
	sub  t2, t1, t0
	bne  t0, loop
	jmp  loop
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(prog, Config{})
	if _, err := m.FastRun(10_000); err != nil { // warm up: build micro-ops, touch pages
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.FastRun(100_000); err != nil {
			t.Fatalf("FastRun: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FastRun allocates %.2f times per 100k-instruction batch, want 0", allocs)
	}
}
