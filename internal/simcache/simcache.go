// Package simcache memoizes cycle-level simulation results on disk and
// provides the unified job runner of the experiment harness.
//
// Every table and figure of the paper's evaluation is a reduction over
// independent simulation jobs (config, programs) → core.Result. Each
// job is content-addressed: the cache key is a SHA-256 over the
// canonicalized core.Config (Config.Fingerprint — every semantic field,
// no observability hooks), the exact program images (text words, data
// bytes, entry point, load bases), the windowed-ABI flag, and
// core.SchemaVersion, which is bumped whenever simulator semantics
// change. A hit therefore can only ever return a result the current
// simulator would reproduce bit-for-bit; anything else — a config
// tweak, a program edit, a schema bump, a corrupted file — misses and
// re-simulates.
//
// Entries live under a cache directory (default .simcache/) as one
// JSON file per key holding the full core.Result plus the flat event-
// counter map, protected by an embedded payload checksum, with an
// index.json sidecar recording provenance (schema, config fingerprint,
// programs, creation time) for every stored key. Interrupted sweeps
// resume for free: completed cells are already on disk, so a re-run
// only simulates what is missing.
//
// A Cache is safe for concurrent use and doubles as the shared store
// of the sweep service (internal/server, cmd/vcaserved): batch callers
// use RunMachine, and concurrent clients use RunMachineShared, which
// adds singleflight deduplication — overlapping requests for the same
// content address pay for exactly one simulation (singleflight.go).
// The cache also memoizes runs that start from a checkpointed state
// image via RunMachineFrom (checkpoint.go), the basis of the
// parallel-region harness in internal/experiments.
//
// EXPERIMENTS.md ("Result cache") documents key derivation,
// invalidation rules, and the cmd/experiments -cache* flags;
// docs/SERVICE.md documents the cache-sharing model of the service.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vca/internal/core"
	"vca/internal/metrics"
	"vca/internal/program"
)

// Key returns the content address of one simulation job. Identical
// keys guarantee bit-identical simulation results under the current
// core.SchemaVersion.
//
// The derivation is split into exported parts — ProgramDigest per
// program image, then KeyFromParts over the config fingerprint and the
// digests — so callers that route on the content address before
// admitting work (the shard router, internal/server/shard) can memoize
// the expensive half (program digests) and derive per-cell keys without
// re-hashing unchanged program images.
func Key(cfg core.Config, progs []*program.Program, windowed bool) string {
	digests := make([]string, len(progs))
	for i, p := range progs {
		digests[i] = ProgramDigest(p)
	}
	return KeyFromParts(cfg.Fingerprint(), windowed, digests)
}

// ProgramDigest returns the content digest of one program image: load
// bases, entry point, text words, and data bytes. Two programs with
// equal digests are indistinguishable to the simulator.
func ProgramDigest(p *program.Program) string {
	h := sha256.New()
	var word [4]byte
	var addr [8]byte
	binary.LittleEndian.PutUint64(addr[:], p.TextBase)
	h.Write(addr[:])
	binary.LittleEndian.PutUint64(addr[:], p.DataBase)
	h.Write(addr[:])
	binary.LittleEndian.PutUint64(addr[:], p.Entry)
	h.Write(addr[:])
	for _, w := range p.Text {
		binary.LittleEndian.PutUint32(word[:], uint32(w))
		h.Write(word[:])
	}
	h.Write(p.Data)
	return hex.EncodeToString(h.Sum(nil))
}

// KeyFromParts derives a job's content address from its already-derived
// parts: the config fingerprint (core.Config.Fingerprint), the windowed
// flag, and one ProgramDigest per thread in thread order. It is the
// pre-admission routing form of Key: the shard router derives every
// cell's address this way to pick the cache-affine worker before any
// work is queued, and the equality Key == KeyFromParts(Fingerprint,
// windowed, digests) is pinned by TestKeyFromPartsMatchesKey.
func KeyFromParts(cfgFingerprint string, windowed bool, progDigests []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\n", core.SchemaVersion)
	fmt.Fprintf(h, "config=%s\n", cfgFingerprint)
	fmt.Fprintf(h, "windowed=%v\nprograms=%d\n", windowed, len(progDigests))
	for _, d := range progDigests {
		fmt.Fprintf(h, "program=%s\n", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one stored simulation result: the full core.Result (minus
// the live metrics registry) and the flat counter map, plus provenance
// and an integrity checksum over the payload.
type Entry struct {
	Schema   int               `json:"schema"`
	Key      string            `json:"key"`
	Config   string            `json:"config"` // Config.Fingerprint at store time
	Result   *core.Result      `json:"result"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	Checksum string            `json:"checksum"` // SHA-256 of payloadBytes(Result, Counters)
}

// payloadBytes is the canonical byte form the checksum covers:
// encoding/json is deterministic over structs (declaration order) and
// maps (sorted keys).
func payloadBytes(res *core.Result, counters map[string]uint64) ([]byte, error) {
	return json.Marshal(struct {
		Result   *core.Result      `json:"result"`
		Counters map[string]uint64 `json:"counters,omitempty"`
	}{res, counters})
}

func checksum(res *core.Result, counters map[string]uint64) (string, error) {
	b, err := payloadBytes(res, counters)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// IndexEntry is the provenance row index.json keeps per stored key —
// enough to audit exactly which simulator version and configuration
// produced a cached cell without opening the entry itself.
type IndexEntry struct {
	Schema   int    `json:"schema"`
	Config   string `json:"config"`
	Programs string `json:"programs"` // comma-joined program names
	Cycles   uint64 `json:"cycles"`
	Created  string `json:"created"` // RFC 3339
}

// Stats counts cache traffic since Open. Bypassed counts jobs run with
// a nil cache handle (caching disabled).
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stores  uint64 `json:"stores"`
	Corrupt uint64 `json:"corrupt"` // entries that failed checksum/decode and were discarded
	Errors  uint64 `json:"errors"`  // I/O errors (treated as misses)

	// SFHits counts RunMachineShared callers that coalesced onto another
	// caller's in-flight simulation (singleflight followers). A follower
	// is neither a disk hit nor a miss: total simulations == Misses, and
	// total answered jobs == Hits + Misses + SFHits.
	SFHits uint64 `json:"sf_hits,omitempty"`

	// Simulations counts detailed simulations the cache actually started
	// on behalf of RunMachine/RunMachineShared/RunMachineFrom misses. The
	// singleflight invariant Misses == Simulations (every miss simulates
	// exactly once, and nothing else simulates) is asserted by the
	// counterpoint predicate cache-misses-eq-simulations.
	Simulations uint64 `json:"simulations,omitempty"`

	// Checkpoint-store traffic (region-boundary images; see checkpoint.go).
	CkHits   uint64 `json:"ck_hits,omitempty"`
	CkMisses uint64 `json:"ck_misses,omitempty"`
	CkStores uint64 `json:"ck_stores,omitempty"`
}

// HitRate returns Hits/(Hits+Misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is an on-disk, content-addressed store of simulation results.
// A nil *Cache is valid and means "caching disabled": RunMachine
// simulates directly. Methods are safe for concurrent use by the
// Runner's workers.
type Cache struct {
	dir string

	hits, misses, stores, corrupt, errs atomic.Uint64
	ckHits, ckMisses, ckStores          atomic.Uint64
	sfHits                              atomic.Uint64
	simulations                         atomic.Uint64

	sf flightGroup // in-flight dedup for RunMachineShared

	mu    sync.Mutex // guards index mutation + index.json rewrite
	index map[string]IndexEntry
}

const indexFile = "index.json"

// Open creates (if needed) and opens a cache directory, loading the
// provenance index. An unreadable index is rebuilt empty rather than
// trusted: entry files carry their own checksums, so the index is
// advisory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	c := &Cache{dir: dir, index: map[string]IndexEntry{}}
	if b, err := os.ReadFile(filepath.Join(dir, indexFile)); err == nil {
		if err := json.Unmarshal(b, &c.index); err != nil {
			c.index = map[string]IndexEntry{}
		}
	}
	return c, nil
}

// Dir returns the cache directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Clear removes every entry and the index.
func (c *Cache) Clear() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	for _, e := range names {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		if err := os.Remove(filepath.Join(c.dir, e.Name())); err != nil {
			return fmt.Errorf("simcache: %w", err)
		}
	}
	c.index = map[string]IndexEntry{}
	return nil
}

// Len returns the number of indexed entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry for key. ok=false on miss; a corrupted or
// schema-stale entry is removed and reported as a miss. Get does not
// touch the hit/miss statistics — RunMachine owns those.
func (c *Cache) Get(key string) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	b, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.errs.Add(1)
		}
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		c.discardCorrupt(key)
		return nil, false
	}
	sum, err := checksum(e.Result, e.Counters)
	if err != nil || sum != e.Checksum || e.Key != key || e.Schema != core.SchemaVersion || e.Result == nil {
		c.discardCorrupt(key)
		return nil, false
	}
	return &e, true
}

func (c *Cache) discardCorrupt(key string) {
	c.corrupt.Add(1)
	os.Remove(c.entryPath(key))
	c.mu.Lock()
	delete(c.index, key)
	c.writeIndexLocked()
	c.mu.Unlock()
}

// Put stores a result under key (atomic write: temp file + rename) and
// records its provenance in the index.
func (c *Cache) Put(key string, cfg core.Config, progs []*program.Program, res *core.Result, counters map[string]uint64) error {
	if c == nil {
		return nil
	}
	sum, err := checksum(res, counters)
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	e := Entry{
		Schema:   core.SchemaVersion,
		Key:      key,
		Config:   cfg.Fingerprint(),
		Result:   res,
		Counters: counters,
		Checksum: sum,
	}
	b, err := json.MarshalIndent(&e, "", " ")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	c.stores.Add(1)

	names := ""
	for i, p := range progs {
		if i > 0 {
			names += ","
		}
		names += p.Name
	}
	c.mu.Lock()
	c.index[key] = IndexEntry{
		Schema:   core.SchemaVersion,
		Config:   e.Config,
		Programs: names,
		Cycles:   res.Cycles,
		Created:  time.Now().UTC().Format(time.RFC3339),
	}
	c.writeIndexLocked()
	c.mu.Unlock()
	return nil
}

// writeIndexLocked rewrites index.json atomically; c.mu must be held.
// Index write failures are tolerated (the index is provenance, not
// truth) but counted.
func (c *Cache) writeIndexLocked() {
	b, err := json.MarshalIndent(c.index, "", " ")
	if err != nil {
		c.errs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(c.dir, "index-*")
	if err != nil {
		c.errs.Add(1)
		return
	}
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), filepath.Join(c.dir, indexFile))
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
	}
}

// RunMachine is the memoized simulation entry point: on a hit it
// returns the stored result (and its counter map) without simulating;
// on a miss it builds the machine, runs it, stores the result, and
// returns it. The returned hit flag reports which path was taken.
//
// A hit's Result has a nil Metrics registry — callers needing live
// registry access (histograms, stats dumps) must bypass the cache.
func (c *Cache) RunMachine(cfg core.Config, progs []*program.Program, windowed bool) (res *core.Result, counters map[string]uint64, hit bool, err error) {
	if c == nil {
		res, err := simulate(cfg, progs, windowed)
		if err != nil {
			return nil, nil, false, err
		}
		return res, res.Metrics.CounterMap(), false, nil
	}
	key := Key(cfg, progs, windowed)
	if e, ok := c.Get(key); ok {
		c.hits.Add(1)
		return e.Result, e.Counters, true, nil
	}
	c.misses.Add(1)
	c.simulations.Add(1)
	r, err := simulate(cfg, progs, windowed)
	if err != nil {
		return nil, nil, false, err
	}
	cm := r.Metrics.CounterMap()
	if err := c.Put(key, cfg, progs, r, cm); err != nil {
		c.errs.Add(1) // a store failure degrades to "no caching", not a harness error
	}
	return r, cm, false, nil
}

func simulate(cfg core.Config, progs []*program.Program, windowed bool) (*core.Result, error) {
	m, err := core.New(cfg, progs, windowed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// Stats returns a snapshot of the traffic counters (zero for nil).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stores:      c.stores.Load(),
		Corrupt:     c.corrupt.Load(),
		Errors:      c.errs.Load(),
		SFHits:      c.sfHits.Load(),
		Simulations: c.simulations.Load(),
		CkHits:      c.ckHits.Load(),
		CkMisses:    c.ckMisses.Load(),
		CkStores:    c.ckStores.Load(),
	}
}

// MetricsRegistry exports the traffic counters as a point-in-time
// internal/metrics registry (names simcache.*), the form the BENCH_*
// report and other exporters consume.
func (c *Cache) MetricsRegistry() *metrics.Registry {
	s := c.Stats()
	r := metrics.NewRegistry()
	add := func(name string, v uint64, desc string) {
		ctr := r.Counter("simcache."+name, "events", desc)
		ctr.Add(v)
	}
	add("hits", s.Hits, "simulation jobs answered from the result cache")
	add("misses", s.Misses, "simulation jobs that had to simulate")
	add("stores", s.Stores, "results written to the cache")
	add("corrupt", s.Corrupt, "cache entries discarded on checksum/decode failure")
	add("errors", s.Errors, "cache I/O errors (degraded to misses)")
	add("sf_hits", s.SFHits, "concurrent identical jobs coalesced onto one in-flight simulation")
	add("simulations", s.Simulations, "detailed simulations started for cache misses (invariant: == misses)")
	add("ck_hits", s.CkHits, "region-boundary checkpoints answered from the store")
	add("ck_misses", s.CkMisses, "region-boundary checkpoint lookups that missed")
	add("ck_stores", s.CkStores, "region-boundary checkpoints written to the store")
	return r
}

// String renders the stats for the end-of-run summary line.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d stores, %d corrupt, %d errors (hit rate %.1f%%)",
		s.Hits, s.Misses, s.Stores, s.Corrupt, s.Errors, 100*s.HitRate())
}
