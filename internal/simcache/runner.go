package simcache

import (
	"cmp"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes independent, deterministic jobs across worker
// goroutines. It is the single dispatch layer of the experiment
// harness (internal/experiments, internal/verify): every sweep used to
// carry its own ad-hoc parallelFor with first-finisher-wins error
// reporting; the Runner replaces those with deterministic semantics.
//
// Error discipline: all job failures are collected and returned as one
// errors.Join in ascending job-index order, so the primary (first)
// error is always the lowest failing index — never whichever failing
// goroutine happened to finish first. Dispatch stops after the first
// observed failure (in-flight jobs finish; no new ones start) unless
// KeepGoing is set. Because jobs are dispatched in index order, the
// lowest failing index is always dispatched before dispatch can stop,
// so the primary error is deterministic even with early stop.
//
// A panicking job does not kill the harness: the panic is recovered and
// reported as that job's error (with its stack), so one pathological
// configuration becomes a failed cell instead of a dead sweep.
type Runner struct {
	// Jobs is the worker count; 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Timeout bounds each job's wall time (0 = unbounded). A timed-out
	// job is reported failed; its goroutine is abandoned and drains on
	// its own (simulations are bounded by Config.MaxCycles).
	Timeout time.Duration
	// KeepGoing dispatches every job even after failures, making the
	// full aggregated error deterministic (early stop only guarantees a
	// deterministic primary error).
	KeepGoing bool
}

// jobError wraps one job's failure with its index for deterministic
// ordering and reporting.
type jobError struct {
	index int
	err   error
}

func (e *jobError) Error() string { return fmt.Sprintf("job %d: %v", e.index, e.err) }
func (e *jobError) Unwrap() error { return e.err }

// Run executes fn(i) for i in [0,n) and returns the aggregated error
// (nil when every job succeeds). See the Runner doc comment for the
// dispatch and error-ordering contract.
func (r Runner) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		fails  []*jobError
		failed atomic.Bool
	)
	record := func(i int, err error) {
		mu.Lock()
		fails = append(fails, &jobError{index: i, err: err})
		mu.Unlock()
		failed.Store(true)
	}

	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := r.runOne(i, fn); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n && (r.KeepGoing || !failed.Load()); i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	if len(fails) == 0 {
		return nil
	}
	slices.SortFunc(fails, func(a, b *jobError) int { return cmp.Compare(a.index, b.index) })
	errs := make([]error, len(fails))
	for i, f := range fails {
		errs[i] = f
	}
	return errors.Join(errs...)
}

// runOne runs a single job with panic recovery and the optional
// timeout watchdog.
func (r Runner) runOne(i int, fn func(int) error) error {
	if r.Timeout <= 0 {
		return protect(i, fn)
	}
	done := make(chan error, 1)
	go func() { done <- protect(i, fn) }()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("timed out after %v", r.Timeout)
	}
}

// protect converts a panic in fn into an ordinary error carrying the
// panic value and stack.
func protect(i int, fn func(int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	return fn(i)
}
