package simcache

import (
	"sync"

	"vca/internal/core"
	"vca/internal/program"
)

// flight is one in-progress simulation that concurrent callers of
// RunMachineShared coalesce onto. The leader closes done after
// publishing res/counters/err; followers block on done and share the
// published values. Results are immutable after Run, so sharing the
// *core.Result pointer across callers is safe.
type flight struct {
	done     chan struct{}
	res      *core.Result
	counters map[string]uint64
	err      error
}

// flightGroup dedups concurrent work by key: the first caller for a key
// becomes the leader and runs fn; callers arriving while the leader is
// in flight wait and share the leader's outcome. Distinct keys never
// interact. This is the classic singleflight pattern, specialized to
// simulation results so the repository adds no external dependency.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// do returns fn()'s outcome for key, coalescing concurrent calls.
// shared is true for followers (the callers that did not run fn).
func (g *flightGroup) do(key string, fn func() (*core.Result, map[string]uint64, error)) (res *core.Result, counters map[string]uint64, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, f.counters, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.res, f.counters, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, f.counters, false, f.err
}

// RunMachineShared is RunMachine for a cache shared by concurrent
// clients (the sweep service, internal/server): identical jobs that
// overlap in time are deduplicated with singleflight, so N concurrent
// requests for the same (config, programs, windowed) key pay for
// exactly one simulation — the leader simulates (and stores the result
// as usual); followers block and share the leader's result, counted as
// SFHits rather than cache hits.
//
// The dedup key is the same content address RunMachine uses, so a
// follower can only ever observe a result the current simulator would
// reproduce bit for bit. With a nil cache there is no shared store to
// coalesce on and RunMachineShared degrades to a direct simulation per
// caller, exactly like RunMachine.
func (c *Cache) RunMachineShared(cfg core.Config, progs []*program.Program, windowed bool) (res *core.Result, counters map[string]uint64, hit bool, err error) {
	if c == nil {
		return c.RunMachine(cfg, progs, windowed)
	}
	key := Key(cfg, progs, windowed)
	// Fast path: already on disk. Counted as an ordinary cache hit.
	if e, ok := c.Get(key); ok {
		c.hits.Add(1)
		return e.Result, e.Counters, true, nil
	}
	res, counters, shared, err := c.sf.do(key, func() (*core.Result, map[string]uint64, error) {
		// Re-check under flight leadership: another leader may have
		// finished and stored between our Get miss and acquiring the
		// flight, and a hit here must not be double-simulated.
		if e, ok := c.Get(key); ok {
			c.hits.Add(1)
			return e.Result, e.Counters, nil
		}
		c.misses.Add(1)
		c.simulations.Add(1)
		r, err := simulate(cfg, progs, windowed)
		if err != nil {
			return nil, nil, err
		}
		cm := r.Metrics.CounterMap()
		if err := c.Put(key, cfg, progs, r, cm); err != nil {
			c.errs.Add(1) // store failure degrades to "no caching"
		}
		return r, cm, nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	if shared {
		c.sfHits.Add(1)
	}
	return res, counters, shared, nil
}
