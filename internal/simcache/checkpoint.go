package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/program"
)

// Checkpoint store: the region runner (internal/experiments) manufactures
// one architectural checkpoint per region boundary during its functional
// fast-forward walk and content-addresses each into the cache, so a
// later sweep over the same program never re-executes the walk. Two
// addresses matter:
//
//   - The provenance key (CheckpointKey) identifies a boundary by what
//     produced it — program image hash, ABI mode, instruction count —
//     before the checkpoint exists. Lookups use it.
//   - The content address (emu.Checkpoint.ContentAddress) identifies the
//     state itself and rides inside the file as its checksum; a store
//     under a provenance key whose decoded image fails its checksum is
//     discarded like any corrupt entry.
//
// Checkpoint files live beside result entries as ck-<key>.json and are
// removed by Clear along with everything else.

// CheckpointKey returns the provenance address of a region boundary:
// the functional state of one program after exactly insts instructions
// under one ABI mode. The emulator is deterministic, so the key fully
// determines the image (given equal emu.CheckpointVersion).
func CheckpointKey(programHash string, windowed bool, insts uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "ckprov\nversion=%d\nprogram=%s\nwindowed=%v\ninsts=%d\n",
		emu.CheckpointVersion, programHash, windowed, insts)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) checkpointPath(key string) string {
	return c.entryPath("ck-" + key)
}

// GetCheckpoint loads the checkpoint stored under a provenance key.
// ok=false on miss; a corrupt or version-stale file is removed and
// reported as a miss.
func (c *Cache) GetCheckpoint(key string) (*emu.Checkpoint, bool) {
	if c == nil {
		return nil, false
	}
	f, err := os.Open(c.checkpointPath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.errs.Add(1)
		}
		c.ckMisses.Add(1)
		return nil, false
	}
	defer f.Close()
	ck, err := emu.DecodeCheckpoint(f)
	if err != nil {
		c.corrupt.Add(1)
		os.Remove(c.checkpointPath(key))
		c.ckMisses.Add(1)
		return nil, false
	}
	c.ckHits.Add(1)
	return ck, true
}

// PutCheckpoint stores a checkpoint under a provenance key (atomic
// write: temp file + rename). Store failures degrade to "not cached".
func (c *Cache) PutCheckpoint(key string, ck *emu.Checkpoint) error {
	if c == nil {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "ck-*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	if err := ck.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.checkpointPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	c.ckStores.Add(1)
	return nil
}

// KeyFrom extends Key with the identity of the checkpoints a run starts
// from: a memoized region result is only reusable when the configuration,
// the programs, AND the exact injected starting state all match. A nil
// slice (or all-nil entries) degrades to the plain Key.
func KeyFrom(cfg core.Config, progs []*program.Program, windowed bool, cks []*emu.Checkpoint) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "base=%s\nrestores=%d\n", Key(cfg, progs, windowed), len(cks))
	for i, ck := range cks {
		if ck == nil {
			fmt.Fprintf(h, "%d=-\n", i)
			continue
		}
		addr, err := ck.ContentAddress()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%d=%s\n", i, addr)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RunMachineFrom is RunMachine for runs that start from injected
// checkpoints: cks[i] (when non-nil) is transplanted into thread i
// before the machine runs. Results are memoized under KeyFrom, so a
// cached region cell can only ever be returned for the identical
// configuration, programs, and starting state.
func (c *Cache) RunMachineFrom(cfg core.Config, progs []*program.Program, windowed bool, cks []*emu.Checkpoint) (res *core.Result, counters map[string]uint64, hit bool, err error) {
	if c == nil {
		res, err := simulateFrom(cfg, progs, windowed, cks)
		if err != nil {
			return nil, nil, false, err
		}
		return res, res.Metrics.CounterMap(), false, nil
	}
	key, err := KeyFrom(cfg, progs, windowed, cks)
	if err != nil {
		return nil, nil, false, fmt.Errorf("simcache: %w", err)
	}
	if e, ok := c.Get(key); ok {
		c.hits.Add(1)
		return e.Result, e.Counters, true, nil
	}
	c.misses.Add(1)
	c.simulations.Add(1)
	r, err := simulateFrom(cfg, progs, windowed, cks)
	if err != nil {
		return nil, nil, false, err
	}
	cm := r.Metrics.CounterMap()
	if err := c.Put(key, cfg, progs, r, cm); err != nil {
		c.errs.Add(1)
	}
	return r, cm, false, nil
}

func simulateFrom(cfg core.Config, progs []*program.Program, windowed bool, cks []*emu.Checkpoint) (*core.Result, error) {
	m, err := core.New(cfg, progs, windowed)
	if err != nil {
		return nil, err
	}
	for i, ck := range cks {
		if ck == nil {
			continue
		}
		if err := m.InjectCheckpoint(i, ck); err != nil {
			return nil, err
		}
	}
	return m.Run()
}
