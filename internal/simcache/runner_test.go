package simcache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunnerDeterministicMultiFailure is the parallelFor regression
// test: several jobs fail concurrently — released by a barrier only
// once every one of them is in flight, so all of them always run — and
// the aggregated error must be byte-identical on every iteration, with
// the lowest failing index first. The old parallelFor reported
// whichever failing job finished first and dropped the rest. Run under
// -race (make test-race) this is the acceptance gate's "100 consecutive
// -race iterations with a stable error string".
func TestRunnerDeterministicMultiFailure(t *testing.T) {
	const n = 8
	failing := map[int]bool{2: true, 5: true, 6: true}
	want := "job 2: boom 2\njob 5: boom 5\njob 6: boom 6"

	for iter := 0; iter < 100; iter++ {
		var started sync.WaitGroup
		started.Add(n)
		release := make(chan struct{})
		go func() {
			started.Wait() // all n jobs in flight — none can be skipped
			close(release)
		}()
		r := Runner{Jobs: n, KeepGoing: true}
		err := r.Run(n, func(i int) error {
			started.Done()
			<-release
			if failing[i] {
				// Fail in reverse index order to tempt a
				// first-finisher-wins implementation.
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != want {
			t.Fatalf("iteration %d: unstable error string:\ngot:  %q\nwant: %q", iter, got, want)
		}
	}
}

func TestRunnerLowestIndexWinsWithEarlyStop(t *testing.T) {
	// Even with early-stop dispatch (KeepGoing=false), the primary
	// error must be the lowest failing index: index 1 fails slowly,
	// index 3 fails instantly and would "win" a finish-order race.
	for iter := 0; iter < 25; iter++ {
		r := Runner{Jobs: 4}
		err := r.Run(4, func(i int) error {
			switch i {
			case 1:
				time.Sleep(5 * time.Millisecond)
				return errors.New("slow failure")
			case 3:
				return errors.New("fast failure")
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		first := strings.SplitN(err.Error(), "\n", 2)[0]
		if first != "job 1: slow failure" {
			t.Fatalf("iteration %d: primary error %q, want job 1's", iter, first)
		}
	}
}

// TestRunnerStopsDispatchOnError preserves the PR-1 guarantee: after a
// failure, no new jobs start (a long matrix does not run to the end on
// a broken configuration).
func TestRunnerStopsDispatchOnError(t *testing.T) {
	const n = 10_000
	var calls atomic.Int64
	err := Runner{}.Run(n, func(i int) error {
		calls.Add(1)
		time.Sleep(100 * time.Microsecond)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := calls.Load(); got > n/2 {
		t.Fatalf("dispatched %d of %d jobs after the first error; dispatch should have stopped", got, n)
	}
}

func TestRunnerRecoversPanics(t *testing.T) {
	var ran atomic.Int64
	err := Runner{Jobs: 2, KeepGoing: true}.Run(4, func(i int) error {
		ran.Add(1)
		if i == 1 {
			panic("config exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	if !strings.Contains(err.Error(), "job 1: panic: config exploded") {
		t.Errorf("error does not identify the panicking job: %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("KeepGoing ran %d of 4 jobs", got)
	}
}

func TestRunnerTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	err := Runner{Jobs: 2, Timeout: 10 * time.Millisecond, KeepGoing: true}.Run(2, func(i int) error {
		if i == 0 {
			<-block
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 0: timed out") {
		t.Fatalf("want job 0 timeout, got %v", err)
	}
}

func TestRunnerAllOK(t *testing.T) {
	var sum atomic.Int64
	if err := (Runner{}).Run(100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("jobs ran %d (sum), want all 100", sum.Load())
	}
}
