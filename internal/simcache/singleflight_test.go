package simcache

import (
	"encoding/json"
	"sync"
	"testing"

	"vca/internal/core"
	"vca/internal/minic"
	"vca/internal/program"
)

func sharedTestJob(t *testing.T) (core.Config, []*program.Program) {
	t.Helper()
	prog, err := minic.Build("sfjob", `
int work(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { acc = acc + i * i; }
  return acc;
}
int main() {
  print_int(work(500));
  return 0;
}
`, minic.ABIFlat)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := core.DefaultConfig(core.RenameConventional, core.WindowNone, 1, 256)
	cfg.MaxCycles = 1 << 22
	return cfg, []*program.Program{prog}
}

// TestSingleflightFollowerSharesLeader pins the coalescing contract
// deterministically: a caller arriving while a flight for its key is in
// progress blocks, shares the leader's published result, and is counted
// as an SFHit — without touching the disk or simulating.
func TestSingleflightFollowerSharesLeader(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, progs := sharedTestJob(t)
	key := Key(cfg, progs, false)

	// Simulate once directly to have a result to publish.
	res, err := simulate(cfg, progs, false)
	if err != nil {
		t.Fatal(err)
	}
	counters := res.Metrics.CounterMap()

	// Install an in-flight leader by hand, then call RunMachineShared
	// from a goroutine: it must block on the flight, not simulate.
	f := &flight{done: make(chan struct{})}
	c.sf.flights = map[string]*flight{key: f}

	type out struct {
		res      *core.Result
		counters map[string]uint64
		hit      bool
		err      error
	}
	got := make(chan out, 1)
	go func() {
		r, cm, hit, err := c.RunMachineShared(cfg, progs, false)
		got <- out{r, cm, hit, err}
	}()

	// Publish the leader's outcome and release the follower.
	f.res, f.counters = res, counters
	close(f.done)

	o := <-got
	if o.err != nil {
		t.Fatalf("follower error: %v", o.err)
	}
	if o.res != res {
		t.Fatalf("follower did not share the leader's result pointer")
	}
	if !o.hit {
		t.Fatalf("follower not reported as a shared hit")
	}
	s := c.Stats()
	if s.SFHits != 1 || s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want exactly one SF hit and nothing else", s)
	}
}

// TestSingleflightConcurrentIdenticalJobs drives K concurrent identical
// jobs through RunMachineShared and asserts the service invariant: no
// matter how the goroutines interleave, exactly one simulation runs
// (Misses == 1) and every other caller is answered by the flight or the
// store (SFHits + Hits == K-1), all with byte-identical payloads.
func TestSingleflightConcurrentIdenticalJobs(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, progs := sharedTestJob(t)

	const K = 8
	payloads := make([][]byte, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, counters, _, err := c.RunMachineShared(cfg, progs, false)
			if err != nil {
				errs[i] = err
				return
			}
			payloads[i], errs[i] = payloadBytes(res, counters)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < K; i++ {
		if string(payloads[i]) != string(payloads[0]) {
			t.Fatalf("caller %d payload differs from caller 0", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 simulation for %d concurrent identical jobs (stats %+v)", s.Misses, K, s)
	}
	if s.SFHits+s.Hits != K-1 {
		t.Fatalf("sf_hits(%d) + hits(%d) != %d (stats %+v)", s.SFHits, s.Hits, K-1, s)
	}

	// The stats must survive a JSON round trip with the sf_hits field —
	// /metrics and -cachestats consumers read this form.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SFHits != s.SFHits {
		t.Fatalf("SFHits lost in JSON round trip: %d != %d", back.SFHits, s.SFHits)
	}
}
