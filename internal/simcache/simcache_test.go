package simcache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/isa"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/workload"
)

// testStop keeps the 15×3 matrix fast while still exercising the real
// pipeline (window traffic, cache misses, branch recovery all happen
// well before 2000 commits).
const testStop = 2000

type model struct {
	name     string
	rename   core.RenameModel
	window   core.WindowModel
	physRegs int
	abi      minic.ABI
}

var testModels = []model{
	{"baseline", core.RenameConventional, core.WindowNone, 256, minic.ABIFlat},
	{"conv-window", core.RenameConventional, core.WindowConventional, 288, minic.ABIWindowed},
	{"vca-window", core.RenameVCA, core.WindowVCA, 128, minic.ABIWindowed},
}

func jobFor(t *testing.T, b workload.Benchmark, m model) (core.Config, []*program.Program, bool) {
	t.Helper()
	cfg := core.DefaultConfig(m.rename, m.window, 1, m.physRegs)
	cfg.StopAfter = testStop
	cfg.MaxCycles = 1 << 34
	prog, err := b.Build(m.abi)
	if err != nil {
		t.Fatalf("%s/%s: %v", b.Name, m.name, err)
	}
	return cfg, []*program.Program{prog}, m.abi == minic.ABIWindowed
}

// resultJSON is the bit-identity witness: the canonical serialized form
// of a result + counters.
func resultJSON(t *testing.T, res *core.Result, counters map[string]uint64) string {
	t.Helper()
	b, err := payloadBytes(res, counters)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCacheRoundTrip is the `make cache-smoke` target: across the full
// suite — all 15 workloads × 3 machine models — a cache hit must return
// a bit-identical core.Result and counter map compared with the cold
// simulation that populated it.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	benches := workload.All()
	if len(benches) != 15 {
		t.Fatalf("suite has %d workloads, want 15", len(benches))
	}
	for _, m := range testModels {
		for _, b := range benches {
			cfg, progs, windowed := jobFor(t, b, m)
			cold, coldCounters, hit, err := cache.RunMachine(cfg, progs, windowed)
			if err != nil {
				t.Fatalf("%s/%s cold: %v", b.Name, m.name, err)
			}
			if hit {
				t.Fatalf("%s/%s: first run cannot hit", b.Name, m.name)
			}
			warm, warmCounters, hit, err := cache.RunMachine(cfg, progs, windowed)
			if err != nil {
				t.Fatalf("%s/%s warm: %v", b.Name, m.name, err)
			}
			if !hit {
				t.Fatalf("%s/%s: second run must hit", b.Name, m.name)
			}
			if warm.Metrics != nil {
				t.Fatalf("%s/%s: a replayed result must not carry a live registry", b.Name, m.name)
			}
			if got, want := resultJSON(t, warm, warmCounters), resultJSON(t, cold, coldCounters); got != want {
				t.Errorf("%s/%s: hit is not bit-identical to the cold run\ngot:  %s\nwant: %s",
					b.Name, m.name, got, want)
			}
		}
	}
	s := cache.Stats()
	want := uint64(len(benches) * len(testModels))
	if s.Hits != want || s.Misses != want || s.Corrupt != 0 {
		t.Errorf("stats %v, want %d hits and %d misses", s, want, want)
	}
}

// TestKeyInvalidation: any semantic change — a config field, a program
// byte, the simulator schema — must change the key and force a miss.
func TestKeyInvalidation(t *testing.T) {
	b, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	cfg, progs, windowed := jobFor(t, b, testModels[0])
	base := Key(cfg, progs, windowed)

	t.Run("config field", func(t *testing.T) {
		c := cfg
		c.Hier.DL1Ports = 1
		if Key(c, progs, windowed) == base {
			t.Error("DL1Ports change did not change the key")
		}
		c = cfg
		c.StopAfter++
		if Key(c, progs, windowed) == base {
			t.Error("StopAfter change did not change the key")
		}
	})
	t.Run("observability field", func(t *testing.T) {
		c := cfg
		c.CoSim = !c.CoSim
		c.Check = true
		if Key(c, progs, windowed) != base {
			t.Error("observability toggles must not change the key")
		}
	})
	t.Run("program byte", func(t *testing.T) {
		// Field-wise clone: Program embeds a sync.Once decode cache and
		// must not be copied by value.
		cloneOf := func(p *program.Program) program.Program {
			return program.Program{
				Name: p.Name, TextBase: p.TextBase, Text: p.Text,
				DataBase: p.DataBase, Data: p.Data, Entry: p.Entry,
				Symbols: p.Symbols,
			}
		}
		clone := cloneOf(progs[0])
		clone.Text = append([]isa.Word{}, progs[0].Text...)
		clone.Text[len(clone.Text)/2] ^= 1
		if Key(cfg, []*program.Program{&clone}, windowed) == base {
			t.Error("text change did not change the key")
		}
		clone = cloneOf(progs[0])
		clone.Data = append([]byte{}, progs[0].Data...)
		if len(clone.Data) == 0 {
			clone.Data = []byte{1}
		} else {
			clone.Data[0] ^= 1
		}
		if Key(cfg, []*program.Program{&clone}, windowed) == base {
			t.Error("data change did not change the key")
		}
	})
	t.Run("windowed flag", func(t *testing.T) {
		if Key(cfg, progs, !windowed) == base {
			t.Error("windowed flag did not change the key")
		}
	})
}

// TestSchemaBumpForcesMiss simulates a simulator-semantics change: an
// entry recorded under a different schema version must not be trusted.
func TestSchemaBumpForcesMiss(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("twolf")
	cfg, progs, windowed := jobFor(t, b, testModels[0])
	if _, _, _, err := cache.RunMachine(cfg, progs, windowed); err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, progs, windowed)

	// Rewrite the stored entry as if an older simulator had written it.
	path := cache.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = core.SchemaVersion - 1
	out, _ := json.Marshal(&e)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := cache.Get(key); ok {
		t.Fatal("stale-schema entry must miss")
	}
	if _, _, hit, err := cache.RunMachine(cfg, progs, windowed); err != nil || hit {
		t.Fatalf("stale-schema entry must re-simulate (hit=%v err=%v)", hit, err)
	}
}

// TestCorruptEntryResimulated: a damaged cache file is detected by the
// payload checksum, discarded, and re-simulated — never trusted.
func TestCorruptEntryResimulated(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("gcc_expr")
	cfg, progs, windowed := jobFor(t, b, testModels[0])
	ref, refCounters, _, err := cache.RunMachine(cfg, progs, windowed)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg, progs, windowed)
	path := cache.entryPath(key)

	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip": func(b []byte) []byte {
			out := append([]byte{}, b...)
			// Flip inside the payload (past the header fields) so the
			// JSON still parses but the checksum catches it.
			for i := len(out) / 2; i < len(out); i++ {
				if out[i] >= '1' && out[i] <= '8' {
					out[i]++
					return out
				}
			}
			t.Fatal("no digit to flip")
			return out
		},
		"not JSON": func([]byte) []byte { return []byte("ceci n'est pas un résultat") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				// Re-populate (previous subtest discarded the entry).
				if _, _, _, err := cache.RunMachine(cfg, progs, windowed); err != nil {
					t.Fatal(err)
				}
				raw, err = os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			before := cache.Stats().Corrupt
			res, counters, hit, err := cache.RunMachine(cfg, progs, windowed)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("corrupted entry served as a hit")
			}
			if cache.Stats().Corrupt <= before {
				t.Error("corruption not counted")
			}
			if resultJSON(t, res, counters) != resultJSON(t, ref, refCounters) {
				t.Error("re-simulated result differs from the original run")
			}
		})
	}
}

// TestResumeAfterInterrupt: a sweep killed mid-run must resume from the
// cells already on disk — re-running recomputes only what is missing.
func TestResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	benches := workload.All()[:8]
	m := testModels[0]
	runAll := func(c *Cache, interruptAt int) error {
		return Runner{Jobs: 1}.Run(len(benches), func(i int) error {
			if i == interruptAt {
				return errors.New("simulated interrupt")
			}
			cfg, progs, windowed := jobFor(t, benches[i], m)
			_, _, _, err := c.RunMachine(cfg, progs, windowed)
			return err
		})
	}
	// First pass dies at cell 4. Early-stop dispatch is best-effort:
	// cells 0–3 always complete first (one worker, in order), and at
	// most one already-dispatched later cell may slip through before
	// the stop lands — but never all of them.
	if err := runAll(cache, 4); err == nil {
		t.Fatal("interrupt did not surface")
	}
	stored := cache.Stats().Stores
	if stored < 4 || stored >= uint64(len(benches)) {
		t.Fatalf("interrupted pass stored %d cells, want 4..%d", stored, len(benches)-1)
	}

	// A fresh process (new cache handle on the same directory) resumes:
	// every completed cell hits, only the missing ones simulate.
	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := runAll(resumed, -1); err != nil {
		t.Fatal(err)
	}
	want := Stats{
		Hits:        stored,
		Misses:      uint64(len(benches)) - stored,
		Stores:      uint64(len(benches)) - stored,
		Simulations: uint64(len(benches)) - stored,
	}
	if s := resumed.Stats(); s != want {
		t.Fatalf("resume stats %v, want %v", s, want)
	}
}

// TestNilCacheBypasses: a nil handle means "disabled", not "broken".
func TestNilCacheBypasses(t *testing.T) {
	var c *Cache
	b, _ := workload.ByName("parser")
	cfg, progs, windowed := jobFor(t, b, testModels[0])
	res, counters, hit, err := c.RunMachine(cfg, progs, windowed)
	if err != nil {
		t.Fatal(err)
	}
	if hit || res == nil || len(counters) == 0 {
		t.Fatalf("nil cache must simulate directly (hit=%v)", hit)
	}
	if c.Stats() != (Stats{}) || c.Len() != 0 || c.Dir() != "" {
		t.Error("nil cache must report zero state")
	}
}

// TestIndexProvenance: every stored key carries a provenance row with
// the schema and config fingerprint that produced it.
func TestIndexProvenance(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("gap")
	cfg, progs, windowed := jobFor(t, b, testModels[2])
	if _, _, _, err := cache.RunMachine(cfg, progs, windowed); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	var idx map[string]IndexEntry
	if err := json.Unmarshal(raw, &idx); err != nil {
		t.Fatal(err)
	}
	e, ok := idx[Key(cfg, progs, windowed)]
	if !ok {
		t.Fatal("stored key missing from index")
	}
	if e.Schema != core.SchemaVersion || e.Config != cfg.Fingerprint() ||
		!strings.HasPrefix(e.Programs, "gap") || e.Cycles == 0 {
		t.Errorf("bad provenance row: %+v", e)
	}

	// Reopening the directory loads the index back.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Errorf("reopened index has %d entries, want 1", re.Len())
	}

	if err := re.Clear(); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Error("Clear left index entries")
	}
	if _, ok := re.Get(Key(cfg, progs, windowed)); ok {
		t.Error("Clear left a readable entry")
	}
}

func TestMetricsRegistryExport(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("mesa")
	cfg, progs, windowed := jobFor(t, b, testModels[0])
	for i := 0; i < 3; i++ {
		if _, _, _, err := cache.RunMachine(cfg, progs, windowed); err != nil {
			t.Fatal(err)
		}
	}
	got := cache.MetricsRegistry().CounterMap()
	want := map[string]uint64{
		"simcache.hits": 2, "simcache.misses": 1, "simcache.stores": 1,
		"simcache.simulations": 1,
		"simcache.corrupt":     0, "simcache.errors": 0, "simcache.sf_hits": 0,
		"simcache.ck_hits": 0, "simcache.ck_misses": 0, "simcache.ck_stores": 0,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("exported counters %v, want %v", got, want)
	}
}

// TestSimulationsMatchMisses pins the service-accounting invariant the
// counterpoint cache-misses-eq-simulations predicate sweeps for: every
// cache miss starts exactly one detailed simulation, across the plain,
// singleflight, and checkpoint-restored entry points — and hits start
// none.
func TestSimulationsMatchMisses(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("mesa")
	cfg, progs, windowed := jobFor(t, b, testModels[0])

	// Miss then hit through RunMachine.
	for i := 0; i < 2; i++ {
		if _, _, _, err := cache.RunMachine(cfg, progs, windowed); err != nil {
			t.Fatal(err)
		}
	}
	// Miss then hit through the singleflight path (different key: deeper
	// stop budget).
	cfg2 := cfg
	cfg2.StopAfter = cfg.StopAfter + 1000
	for i := 0; i < 2; i++ {
		if _, _, _, err := cache.RunMachineShared(cfg2, progs, windowed); err != nil {
			t.Fatal(err)
		}
	}
	// Miss then hit through the checkpoint-restored path (nil
	// checkpoints: cold start, but keyed separately).
	cfg3 := cfg
	cfg3.StopAfter = cfg.StopAfter + 2000
	for i := 0; i < 2; i++ {
		if _, _, _, err := cache.RunMachineFrom(cfg3, progs, windowed, make([]*emu.Checkpoint, len(progs))); err != nil {
			t.Fatal(err)
		}
	}

	s := cache.Stats()
	if s.Simulations != s.Misses {
		t.Errorf("simulations %d != misses %d", s.Simulations, s.Misses)
	}
	if s.Misses != 3 || s.Hits != 3 {
		t.Errorf("traffic misses=%d hits=%d, want 3/3", s.Misses, s.Hits)
	}
}

// TestKeyFromPartsMatchesKey pins the pre-admission routing derivation:
// the key the shard router computes from a cell's config fingerprint and
// program digests (KeyFromParts) must equal the key the worker's cache
// derives when the cell actually runs (Key) — that equality is what
// makes consistent-hash routing cache-affine. It also pins the
// sensitivity of every part: a changed config, program image, program
// order, or windowed flag must change the key.
func TestKeyFromPartsMatchesKey(t *testing.T) {
	crafty, _ := workload.ByName("crafty")
	mesa, _ := workload.ByName("mesa")
	cfg, progs, windowed := jobFor(t, crafty, testModels[2])
	p2, err := mesa.Build(testModels[2].abi)
	if err != nil {
		t.Fatal(err)
	}
	progs = append(progs, p2)
	cfg2 := core.DefaultConfig(testModels[2].rename, testModels[2].window, 2, testModels[2].physRegs)
	cfg2.StopAfter = testStop
	cfg2.MaxCycles = 1 << 34
	cfg = cfg2

	digests := []string{ProgramDigest(progs[0]), ProgramDigest(progs[1])}
	want := Key(cfg, progs, windowed)
	if got := KeyFromParts(cfg.Fingerprint(), windowed, digests); got != want {
		t.Fatalf("KeyFromParts = %s, Key = %s", got, want)
	}

	// Sensitivity: each part independently changes the address.
	cfgB := cfg
	cfgB.StopAfter++
	if KeyFromParts(cfgB.Fingerprint(), windowed, digests) == want {
		t.Error("config change did not change the key")
	}
	if KeyFromParts(cfg.Fingerprint(), !windowed, digests) == want {
		t.Error("windowed flag did not change the key")
	}
	if KeyFromParts(cfg.Fingerprint(), windowed, []string{digests[1], digests[0]}) == want {
		t.Error("program order did not change the key")
	}
	if KeyFromParts(cfg.Fingerprint(), windowed, digests[:1]) == want {
		t.Error("program count did not change the key")
	}

	// ProgramDigest is a pure function of the image: rebuilding the same
	// workload yields the same digest, a different workload a new one.
	p1b, err := crafty.Build(testModels[2].abi)
	if err != nil {
		t.Fatal(err)
	}
	if ProgramDigest(p1b) != digests[0] {
		t.Error("rebuilding the same workload changed its digest")
	}
	if digests[0] == digests[1] {
		t.Error("distinct workloads share a program digest")
	}
}
