package simcache

import (
	"os"
	"testing"

	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/workload"
)

// fastCheckpoint fast-forwards one workload functionally and returns the
// checkpoint at cut instructions.
func fastCheckpoint(t *testing.T, b workload.Benchmark, m model, cut uint64) *emu.Checkpoint {
	t.Helper()
	prog, err := b.Build(m.abi)
	if err != nil {
		t.Fatal(err)
	}
	fm := emu.New(prog, emu.Config{Windowed: m.abi == minic.ABIWindowed})
	if _, err := fm.FastRun(cut); err != nil {
		t.Fatalf("FastRun(%d): %v", cut, err)
	}
	return fm.Checkpoint()
}

// TestCheckpointStoreRoundTrip: a stored boundary image comes back
// bit-identical under its provenance key; corruption is detected,
// discarded, and reported as a miss.
func TestCheckpointStoreRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("crafty")
	ck := fastCheckpoint(t, b, testModels[0], 5000)
	key := CheckpointKey(ck.ProgramHash, ck.Windowed, ck.Insts)

	if _, ok := cache.GetCheckpoint(key); ok {
		t.Fatal("empty store returned a checkpoint")
	}
	if err := cache.PutCheckpoint(key, ck); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.GetCheckpoint(key)
	if !ok {
		t.Fatal("stored checkpoint not found")
	}
	wantAddr, err := ck.ContentAddress()
	if err != nil {
		t.Fatal(err)
	}
	gotAddr, err := got.ContentAddress()
	if err != nil {
		t.Fatal(err)
	}
	if gotAddr != wantAddr {
		t.Fatalf("round trip changed content address: %.12s -> %.12s", wantAddr, gotAddr)
	}
	if s := cache.Stats(); s.CkHits != 1 || s.CkMisses != 1 || s.CkStores != 1 {
		t.Fatalf("checkpoint traffic %+v, want 1 hit / 1 miss / 1 store", s)
	}

	// Flip one byte on disk: the checksum must reject the file.
	path := cache.checkpointPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetCheckpoint(key); ok {
		t.Fatal("corrupted checkpoint was returned")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted checkpoint file was not removed")
	}
}

// TestRunMachineFromMemoizes: a region job (detailed run started from an
// injected checkpoint) is cached under a key that includes the starting
// state, hits bit-identically, and never collides with the from-reset
// key of the same configuration.
func TestRunMachineFromMemoizes(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := workload.ByName("crafty")
	m := testModels[0]
	cfg, progs, windowed := jobFor(t, b, m)
	ck := fastCheckpoint(t, b, m, 5000)
	cks := []*emu.Checkpoint{ck}

	fromKey, err := KeyFrom(cfg, progs, windowed, cks)
	if err != nil {
		t.Fatal(err)
	}
	if fromKey == Key(cfg, progs, windowed) {
		t.Fatal("KeyFrom with a checkpoint equals the from-reset key")
	}
	if nilKey, err := KeyFrom(cfg, progs, windowed, nil); err != nil || nilKey == fromKey {
		t.Fatalf("KeyFrom(nil) must differ from a checkpointed key (err %v)", err)
	}

	cold, coldCounters, hit, err := cache.RunMachineFrom(cfg, progs, windowed, cks)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first region run cannot hit")
	}
	warm, warmCounters, hit, err := cache.RunMachineFrom(cfg, progs, windowed, cks)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second region run must hit")
	}
	if got, want := resultJSON(t, warm, warmCounters), resultJSON(t, cold, coldCounters); got != want {
		t.Fatalf("region hit is not bit-identical to the cold run\ngot:  %s\nwant: %s", got, want)
	}

	// A different starting state must miss.
	other := fastCheckpoint(t, b, m, 6000)
	_, _, hit, err = cache.RunMachineFrom(cfg, progs, windowed, []*emu.Checkpoint{other})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different checkpoint hit the cache")
	}
}
