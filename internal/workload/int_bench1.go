package workload

// Integer benchmarks, part 1: compression and search/tree workloads.

// bzip2_graphic: block compression — run-length encoding followed by a
// move-to-front transform and frequency counting over a synthetic buffer
// with graphic-like runs. Helper-function-per-byte structure gives the
// frequent short calls of the original.
const srcBzip2 = `
int seed = 12345;
char data[2048];
char rle[4096];
int rleLen;
char mtf[256];
int freq[256];

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed >> 16;
}

int emitRun(int ch, int len) {
	rle[rleLen] = ch;
	rle[rleLen + 1] = len;
	rleLen = rleLen + 2;
	return len;
}

int mtfFind(int ch) {
	int i = 0;
	while (mtf[i] != ch) { i = i + 1; }
	int j = i;
	while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
	mtf[0] = ch;
	return i;
}

int countByte(int code) {
	freq[code & 255] = freq[code & 255] + 1;
	return freq[code & 255];
}

int encodeByte(int i) {
	// Mid-tier worker: MTF + count + running checksum, with several
	// values live across the helper calls.
	int ch = rle[i];
	int code = mtfFind(ch);
	int f = countByte(code);
	int weight = code * 2 + 1;
	int bonus = 0;
	if (f > 4) { bonus = weight / 2; }
	return (code + bonus + weight) & 0xffff;
}

int main() {
	int i;
	// Graphic-like data: long runs of a few values.
	int cur = 0;
	for (i = 0; i < 2048; i = i + 1) {
		if (rnd() % 7 == 0) { cur = rnd() % 16; }
		data[i] = cur;
	}
	for (i = 0; i < 256; i = i + 1) { mtf[i] = i; }

	// RLE pass.
	int pos = 0;
	while (pos < 2048) {
		int ch = data[pos];
		int len = 1;
		while (pos + len < 2048 && data[pos + len] == ch && len < 255) {
			len = len + 1;
		}
		emitRun(ch, len);
		pos = pos + len;
	}

	// MTF + frequency pass over the RLE output.
	int check = 0;
	for (i = 0; i < rleLen; i = i + 1) {
		check = (check * 31 + encodeByte(i)) & 0xffffff;
	}
	print_int(check);
	print_int(rleLen);
	return 0;
}`

// crafty: chess bitboards — population counts, bit scans, and sliding
// attack masks over LCG-generated positions, with the tiny helper
// functions the original's move generator is famous for.
const srcCrafty = `
int seed = 987654321;

int rnd() {
	seed = (seed * 6364136223846793005 + 1442695040888963407) & 0x7fffffffffffffff;
	return seed;
}

int popcount(int bb) {
	int n = 0;
	while (bb != 0) { bb = bb & (bb - 1); n = n + 1; }
	return n;
}

int lsb(int bb) {
	int i = 0;
	if (bb == 0) { return 64; }
	while ((bb & 1) == 0) { bb = bb >> 1; i = i + 1; }
	return i;
}

int fileAttacks(int sq, int occ) {
	int att = 0;
	int s = sq + 8;
	while (s < 64) {
		att = att | (1 << s);
		if ((occ >> s) & 1) { s = 64; } else { s = s + 8; }
	}
	s = sq - 8;
	while (s >= 0) {
		att = att | (1 << s);
		if ((occ >> s) & 1) { s = -1; } else { s = s - 8; }
	}
	return att;
}

int mobility(int own, int opp) {
	// Non-leaf mid-tier: several values live across helper calls.
	int occ = own | opp;
	int sq = lsb(own);
	int moves = 0;
	int guard = 0;
	while (sq < 64 && guard < 4) {
		int att = fileAttacks(sq, occ);
		moves = moves + popcount(att & (0 - 1 - own));
		own = own & (own - 1);
		sq = lsb(own);
		guard = guard + 1;
	}
	return moves;
}

int evalBoard(int own, int opp) {
	int material = popcount(own) * 100 - popcount(opp) * 100;
	int mob = mobility(own, opp);
	int mob2 = mobility(opp, own);
	return material + 3 * (mob - mob2);
}

int main() {
	int total = 0;
	int i;
	for (i = 0; i < 250; i = i + 1) {
		int own = rnd() & rnd() & rnd();  // sparse board
		int opp = rnd() & rnd() & (0 - 1 - own);
		total = (total + evalBoard(own, opp)) & 0xffffff;
	}
	print_int(total);
	return 0;
}`

// gap: computational group theory — composing and powering permutations
// held in a flat pool, with per-operation helper calls.
const srcGap = `
int perms[512];  // 32 permutations of 16 points
int tmp[16];
int seed = 42;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int checkPoint(int x) {
	if (x < 0) { return 0; }
	if (x > 15) { return 15; }
	return x;
}

int apply(int p, int x) {
	int xx = checkPoint(x);
	int v = perms[p * 16 + xx];
	return checkPoint(v);
}

int compose(int a, int b, int dst) {
	int i;
	for (i = 0; i < 16; i = i + 1) {
		perms[dst * 16 + i] = apply(a, apply(b, i));
	}
	return dst;
}

int isIdentity(int p) {
	int i;
	for (i = 0; i < 16; i = i + 1) {
		if (apply(p, i) != i) { return 0; }
	}
	return 1;
}

int orderOf(int p) {
	// Copy p to slot 30, repeatedly compose with p until identity.
	int i;
	for (i = 0; i < 16; i = i + 1) { perms[30 * 16 + i] = apply(p, i); }
	int ord = 1;
	while (!isIdentity(30) && ord < 1000) {
		compose(30, p, 31);
		for (i = 0; i < 16; i = i + 1) { perms[30 * 16 + i] = apply(31, i); }
		ord = ord + 1;
	}
	return ord;
}

int shuffle(int p) {
	int i;
	for (i = 0; i < 16; i = i + 1) { perms[p * 16 + i] = i; }
	for (i = 15; i > 0; i = i - 1) {
		int j = rnd() % (i + 1);
		int t = perms[p * 16 + i];
		perms[p * 16 + i] = perms[p * 16 + j];
		perms[p * 16 + j] = t;
	}
	return p;
}

int main() {
	int total = 0;
	int k;
	for (k = 0; k < 18; k = k + 1) {
		shuffle(0);
		shuffle(1);
		compose(0, 1, 2);
		total = total + orderOf(2);
	}
	print_int(total);
	return 0;
}`

// gcc_expr: compiler middle-end flavor — building random expression trees
// in a node pool, recursively evaluating them, and constant-folding, as in
// gcc's expr machinery. Deeply recursive with frequent small calls.
const srcGccExpr = `
int nodeOp[4096];
int nodeL[4096];
int nodeR[4096];
int nodeVal[4096];
int nextNode;
int seed = 777;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int leaf(int v) {
	int n = nextNode;
	nextNode = nextNode + 1;
	nodeOp[n] = 0;
	nodeVal[n] = v;
	return n;
}

int build(int depth) {
	if (depth == 0 || rnd() % 5 == 0) {
		return leaf(rnd() % 100);
	}
	int op = 1 + rnd() % 4;
	int l = build(depth - 1);
	int r = build(depth - 1);
	int n = nextNode;
	nextNode = nextNode + 1;
	nodeOp[n] = op;
	nodeL[n] = l;
	nodeR[n] = r;
	return n;
}

int eval(int n) {
	int op = nodeOp[n];
	if (op == 0) { return nodeVal[n]; }
	int a = eval(nodeL[n]);
	int b = eval(nodeR[n]);
	if (op == 1) { return a + b; }
	if (op == 2) { return a - b; }
	if (op == 3) { return (a * b) & 0xffff; }
	if (b == 0) { return a; }
	return a / b;
}

int fold(int n) {
	// Constant folding: returns number of folded nodes.
	if (nodeOp[n] == 0) { return 0; }
	int c = fold(nodeL[n]) + fold(nodeR[n]);
	if (nodeOp[nodeL[n]] == 0 && nodeOp[nodeR[n]] == 0) {
		nodeVal[n] = eval(n);
		nodeOp[n] = 0;
		return c + 1;
	}
	return c;
}

int main() {
	int total = 0;
	int folded = 0;
	int t;
	for (t = 0; t < 16; t = t + 1) {
		nextNode = 0;
		int root = build(9);
		total = (total + eval(root)) & 0xffffff;
		folded = folded + fold(root);
		total = (total + eval(root)) & 0xffffff;
	}
	print_int(total);
	print_int(folded);
	return 0;
}`
