package workload

// Integer benchmarks, part 2: parsing, interpretation, databases, CAD.

// gzip_graphic: LZ77 with hash-chain match search over a synthetic
// graphic-like byte stream.
const srcGzip = `
int seed = 2468;
char data[4096];
int head[256];
int chain[4096];
int outLits;
int outMatches;
int check;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed >> 7;
}

int hashAt(int i) {
	return (data[i] * 33 + data[i + 1]) & 255;
}

int matchLen(int a, int b, int limit) {
	int n = 0;
	while (n < limit && data[a + n] == data[b + n]) { n = n + 1; }
	return n;
}

int insertPos(int i) {
	int h = hashAt(i);
	chain[i] = head[h];
	head[h] = i;
	return h;
}

int bestMatch(int i, int limit) {
	int cand = head[hashAt(i)];
	int best = 0;
	int tries = 8;
	while (cand >= 0 && tries > 0) {
		if (cand < i) {
			int len = matchLen(cand, i, limit);
			if (len > best) { best = len; }
		}
		cand = chain[cand];
		tries = tries - 1;
	}
	return best;
}

int processPos(int pos) {
	// Mid-tier: match search + emission with state live across calls.
	int limit = 3000 - pos;
	if (limit > 64) { limit = 64; }
	int len = bestMatch(pos, limit);
	int emitted = data[pos];
	if (len >= 3) {
		outMatches = outMatches + 1;
		check = (check * 17 + len) & 0xffffff;
		int j;
		for (j = 0; j < len; j = j + 1) { insertPos(pos + j); }
		return pos + len;
	}
	outLits = outLits + 1;
	check = (check * 17 + emitted) & 0xffffff;
	insertPos(pos);
	return pos + 1;
}

int main() {
	int i;
	int cur = 65;
	for (i = 0; i < 4096; i = i + 1) {
		if (rnd() % 11 == 0) { cur = 65 + rnd() % 24; }
		data[i] = cur;
	}
	for (i = 0; i < 256; i = i + 1) { head[i] = -1; }

	int pos = 0;
	while (pos < 3000) {
		pos = processPos(pos);
	}
	print_int(check);
	print_int(outLits);
	print_int(outMatches);
	return 0;
}`

// parser: recursive-descent parsing of synthetic sentences over a small
// part-of-speech grammar, with one helper call per grammar rule — the
// link-grammar parser's call-dense shape.
const srcParser = `
// Token codes: 0=det 1=adj 2=noun 3=verb 4=adv 5=prep 6=end
int toks[8192];
int ntoks;
int cursor;
int parsed;
int failed;
int seed = 31337;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed >> 5;
}

int peek() { return toks[cursor]; }
int advance() { cursor = cursor + 1; return toks[cursor - 1]; }

int parseNoun() {
	if (peek() == 2) { advance(); return 1; }
	return 0;
}

int parseNP() {
	int hasDet = 0;
	int adjs = 0;
	if (peek() == 0) { advance(); hasDet = 1; }
	while (peek() == 1) { advance(); adjs = adjs + 1; }
	if (!parseNoun()) { return 0; }
	int score = hasDet * 4 + adjs;
	if (peek() == 5) {
		advance();
		int sub = parseNP();
		if (sub == 0) { return 0; }
		return score + sub;
	}
	return score + 1;
}

int parseVP() {
	int advs = 0;
	if (peek() != 3) { return 0; }
	advance();
	while (peek() == 4) { advance(); advs = advs + 1; }
	if (peek() == 0 || peek() == 1 || peek() == 2) {
		int obj = parseNP();
		if (obj == 0) { return 0; }
		return obj + advs + 1;
	}
	return advs + 1;
}

int parseSentence() {
	int subj = parseNP();
	if (subj == 0) { return 0; }
	int pred = parseVP();
	if (pred == 0) { return 0; }
	if (peek() != 6) { return 0; }
	advance();
	return subj + pred;
}

int genSentence() {
	// Mostly grammatical sentences, sometimes broken.
	toks[ntoks] = 0; ntoks = ntoks + 1;
	while (rnd() % 3 == 0) { toks[ntoks] = 1; ntoks = ntoks + 1; }
	toks[ntoks] = 2; ntoks = ntoks + 1;
	if (rnd() % 4 == 0) { toks[ntoks] = 5; ntoks = ntoks + 1;
		toks[ntoks] = 0; ntoks = ntoks + 1;
		toks[ntoks] = 2; ntoks = ntoks + 1; }
	toks[ntoks] = 3; ntoks = ntoks + 1;
	while (rnd() % 4 == 0) { toks[ntoks] = 4; ntoks = ntoks + 1; }
	if (rnd() % 2 == 0) { toks[ntoks] = 0; ntoks = ntoks + 1;
		toks[ntoks] = 2; ntoks = ntoks + 1; }
	if (rnd() % 9 == 0) { toks[ntoks] = 5; ntoks = ntoks + 1; } // break it
	toks[ntoks] = 6; ntoks = ntoks + 1;
	return ntoks;
}

int main() {
	int s;
	for (s = 0; s < 400; s = s + 1) {
		ntoks = 0;
		genSentence();
		cursor = 0;
		if (parseSentence()) { parsed = parsed + 1; } else { failed = failed + 1; }
	}
	print_int(parsed);
	print_int(failed);
	return 0;
}`

// perlbmk_535: a bytecode interpreter interpreting a recursive script —
// the dispatch-call-per-operation structure that makes perl the most
// call-dense member of Table 2 (ratio 0.85).
const srcPerlbmk = `
// Bytecode: 0=halt 1=pushC 2=load 3=store 4=add 5=sub 6=mul 7=jz 8=jmp
//           9=call 10=ret 11=lt
int code[256];
int vstack[256];
int sp;
int vars[16];
int seed = 5150;

int push(int v) { vstack[sp] = v; sp = sp + 1; return v; }
int pop() { sp = sp - 1; return vstack[sp]; }

int doAdd() { int b = pop(); int a = pop(); return push(a + b); }
int doSub() { int b = pop(); int a = pop(); return push(a - b); }
int doMul() { int b = pop(); int a = pop(); return push((a * b) & 0xffff); }
int doLt()  { int b = pop(); int a = pop(); return push(a < b); }

int execOp(int op, int arg) {
	// Mid-tier dispatch for non-control ops; values live across calls.
	int before = sp;
	if (op == 1) { push(arg); }
	else if (op == 2) { push(vars[arg]); }
	else if (op == 3) { vars[arg] = pop(); }
	else if (op == 4) { doAdd(); }
	else if (op == 5) { doSub(); }
	else if (op == 6) { doMul(); }
	else { doLt(); }
	return sp - before;
}

int interp(int pc) {
	while (1) {
		int op = code[pc];
		int arg = code[pc + 1];
		pc = pc + 2;
		if (op == 0 || op == 10) { return 0; }
		if (op == 7) { if (pop() == 0) { pc = arg; } }
		else if (op == 8) { pc = arg; }
		else if (op == 9) { interp(arg); }
		else { execOp(op, arg); }
	}
	return 0;
}

int emit(int at, int op, int arg) {
	code[at] = op;
	code[at + 1] = arg;
	return at + 2;
}

int main() {
	// Script: main loop counts down var0 from N, each iteration calls a
	// subroutine at 100 that does arithmetic into var1.
	int p = 0;
	p = emit(p, 1, 70);   // push N
	p = emit(p, 3, 0);    // store var0
	// loop:
	int loop = p;
	p = emit(p, 2, 0);    // load var0
	p = emit(p, 7, 38);   // jz end
	p = emit(p, 9, 100);  // call sub
	p = emit(p, 2, 0);
	p = emit(p, 1, 1);
	p = emit(p, 5, 0);    // sub
	p = emit(p, 3, 0);    // store var0
	p = emit(p, 8, loop); // jmp loop
	// end at 38:
	emit(38, 0, 0);
	// subroutine at 100: var1 = (var1*3 + var0) & 0xffff ; nested call at 140
	int q = 100;
	q = emit(q, 2, 1);
	q = emit(q, 1, 3);
	q = emit(q, 6, 0);
	q = emit(q, 2, 0);
	q = emit(q, 4, 0);
	q = emit(q, 3, 1);
	q = emit(q, 9, 140); // nested call
	q = emit(q, 10, 0);
	// subroutine at 140: var2 = var2 + (var1 < 5000)
	int r = 140;
	r = emit(r, 2, 2);
	r = emit(r, 2, 1);
	r = emit(r, 1, 5000);
	r = emit(r, 11, 0);
	r = emit(r, 4, 0);
	r = emit(r, 3, 2);
	r = emit(r, 10, 0);

	int round;
	for (round = 0; round < 8; round = round + 1) {
		vars[0] = 0; vars[1] = round; vars[2] = 0;
		sp = 0;
		interp(0);
		seed = (seed + vars[1] + vars[2]) & 0xffffff;
	}
	print_int(seed);
	return 0;
}`

// twolf: simulated-annealing standard-cell placement — long inline cost
// loops with only occasional function calls (ratio 0.99: windows barely
// help).
const srcTwolf = `
int cellX[128];
int cellY[128];
int netA[256];
int netB[256];
int seed = 424242;
int bestCost;

int netCost(int n) {
	int dx = cellX[netA[n]] - cellX[netB[n]];
	int dy = cellY[netA[n]] - cellY[netB[n]];
	if (dx < 0) { dx = 0 - dx; }
	if (dy < 0) { dy = 0 - dy; }
	return dx + dy;
}

int recenter() {
	// Rare bookkeeping call.
	int i;
	int sx = 0;
	int sy = 0;
	for (i = 0; i < 128; i = i + 1) { sx = sx + cellX[i]; sy = sy + cellY[i]; }
	return (sx + sy) / 256;
}

int main() {
	int i;
	// Inline LCG throughout: calls are rare by design.
	for (i = 0; i < 128; i = i + 1) {
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		cellX[i] = seed % 64;
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		cellY[i] = seed % 64;
	}
	for (i = 0; i < 256; i = i + 1) {
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		netA[i] = seed % 128;
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		netB[i] = seed % 128;
	}

	int cost = 0;
	for (i = 0; i < 256; i = i + 1) { cost = cost + netCost(i); }
	bestCost = cost;

	int iter;
	int center = 0;
	for (iter = 0; iter < 500; iter = iter + 1) {
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		int a = seed % 128;
		seed = (seed * 1103515245 + 12345) & 0x7fffffff;
		int b = seed % 128;
		// Swap positions, recompute affected cost inline (approximate:
		// full recompute over a strided subset).
		int tx = cellX[a]; cellX[a] = cellX[b]; cellX[b] = tx;
		int ty = cellY[a]; cellY[a] = cellY[b]; cellY[b] = ty;
		int c = 0;
		int n;
		for (n = iter & 7; n < 256; n = n + 8) { c = c + netCost(n); }
		if (c * 8 > bestCost + 64) {
			// Reject: swap back.
			tx = cellX[a]; cellX[a] = cellX[b]; cellX[b] = tx;
			ty = cellY[a]; cellY[a] = cellY[b]; cellY[b] = ty;
		} else {
			bestCost = c * 8;
		}
		if ((iter & 255) == 0) { center = recenter(); }
	}
	print_int(bestCost);
	print_int(center);
	return 0;
}`

// vortex_2: an object-oriented in-memory database — allocation from a
// free list, hashed insertion, lookups, and deletions, all through layers
// of tiny accessor functions (ratio 0.82: the deepest call density).
const srcVortex = `
int objKey[1024];
int objVal[1024];
int objNext[1024];
int freeHead;
int buckets[64];
int seed = 13579;
int live;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed >> 4;
}

int mix(int k) { return (k * 2654435761) & 0x7fffffff; }
int hashKey(int k) { return mix(k) & 63; }

int getKey(int o) { return objKey[o]; }
int getVal(int o) { return objVal[o]; }
int getNext(int o) { return objNext[o]; }
int setKey(int o, int v) { objKey[o] = v; return o; }
int setVal(int o, int v) { objVal[o] = v; return o; }
int setNext(int o, int v) { objNext[o] = v; return o; }

int alloc() {
	int o = freeHead;
	freeHead = getNext(o);
	return o;
}

int release(int o) {
	setNext(o, freeHead);
	freeHead = o;
	return o;
}

int insert(int k, int v) {
	int h = hashKey(k);
	int o = alloc();
	setKey(o, k);
	setVal(o, v);
	setNext(o, buckets[h]);
	buckets[h] = o;
	live = live + 1;
	return o;
}

int find(int k) {
	int o = buckets[hashKey(k)];
	while (o >= 0) {
		if (getKey(o) == k) { return o; }
		o = getNext(o);
	}
	return -1;
}

int removeKey(int k) {
	int h = hashKey(k);
	int o = buckets[h];
	int prev = -1;
	while (o >= 0) {
		if (getKey(o) == k) {
			if (prev < 0) { buckets[h] = getNext(o); }
			else { setNext(prev, getNext(o)); }
			release(o);
			live = live - 1;
			return 1;
		}
		prev = o;
		o = getNext(o);
	}
	return 0;
}

int doOp(int check) {
	// Mid-tier transaction: key, kind, and check live across DB calls.
	int k = rnd() % 600;
	int kind = rnd() % 10;
	if (kind < 5) {
		if (live < 900) {
			int existing = find(k);
			if (existing < 0) { insert(k, k * 3); }
		}
	} else if (kind < 8) {
		int o = find(k);
		if (o >= 0) { check = (check + getVal(o)) & 0xffffff; }
	} else {
		removeKey(k);
	}
	return check;
}

int main() {
	int i;
	for (i = 0; i < 1023; i = i + 1) { objNext[i] = i + 1; }
	objNext[1023] = -1;
	freeHead = 0;
	for (i = 0; i < 64; i = i + 1) { buckets[i] = -1; }

	int check = 0;
	int op;
	for (op = 0; op < 1200; op = op + 1) {
		check = doOp(check);
	}
	print_int(check);
	print_int(live);
	return 0;
}`

// vpr_route: FPGA maze routing — breadth-first wavefront expansion on a
// grid with helper calls for indexing and cost lookup.
const srcVprRoute = `
int costGrid[256];  // 16x16
int dist[256];
int queue[2048];
int seed = 8181;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed >> 3;
}

int qt;

int idx(int x, int y) { return y * 16 + x; }
int costAt(int i) { return costGrid[i]; }

int relax(int cur, int nx, int ny) {
	if (nx < 0 || nx >= 16 || ny < 0 || ny >= 16) { return 0; }
	int ni = idx(nx, ny);
	int nd = dist[cur] + costAt(ni);
	if (nd < dist[ni] && qt < 2000) {
		dist[ni] = nd;
		queue[qt] = ni;
		qt = qt + 1;
		return 1;
	}
	return 0;
}

int expand(int cur) {
	// Mid-tier: coordinates live across the four relax calls.
	int x = cur % 16;
	int y = cur / 16;
	int pushed = relax(cur, x + 1, y);
	pushed = pushed + relax(cur, x - 1, y);
	pushed = pushed + relax(cur, x, y + 1);
	pushed = pushed + relax(cur, x, y - 1);
	return pushed;
}

int route(int src, int dst) {
	int i;
	for (i = 0; i < 256; i = i + 1) { dist[i] = 1 << 30; }
	int qh = 0;
	qt = 0;
	dist[src] = 0;
	queue[qt] = src;
	qt = qt + 1;
	while (qh < qt && qt < 2000) {
		int cur = queue[qh];
		qh = qh + 1;
		if (cur == dst) { return dist[cur]; }
		expand(cur);
	}
	return -1;
}

int main() {
	int i;
	for (i = 0; i < 256; i = i + 1) { costGrid[i] = 1 + rnd() % 9; }
	int total = 0;
	int r;
	for (r = 0; r < 25; r = r + 1) {
		int src = rnd() % 256;
		int dst = rnd() % 256;
		int c = route(src, dst);
		if (c > 0) { total = (total + c) & 0xffffff; }
	}
	print_int(total);
	return 0;
}`
