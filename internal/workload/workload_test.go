package workload

import (
	"testing"

	"vca/internal/minic"
)

func TestAllBenchmarksBuildAndRunBothABIs(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			flat, err := b.Profile(minic.ABIFlat)
			if err != nil {
				t.Fatal(err)
			}
			win, err := b.Profile(minic.ABIWindowed)
			if err != nil {
				t.Fatal(err)
			}
			if flat.Output == "" {
				t.Error("no output/checksum")
			}
			if flat.Output != win.Output {
				t.Errorf("ABI outputs differ: flat %q, windowed %q", flat.Output, win.Output)
			}
			t.Logf("insts flat=%d win=%d ratio=%.3f calls/kinst=%.1f loads+stores=%d",
				flat.Stats.Insts, win.Stats.Insts,
				float64(win.Stats.Insts)/float64(flat.Stats.Insts),
				1000*float64(flat.Stats.Calls)/float64(flat.Stats.Insts),
				flat.Stats.Loads+flat.Stats.Stores)
		})
	}
}

func TestPathLengthRatios(t *testing.T) {
	// Table 2's ratios span 0.82-0.99 with average 0.92. Our synthetic
	// suite must land in the same regime: every ratio < 1 and the average
	// near 0.9.
	var sum float64
	n := 0
	for _, b := range All() {
		ratio, err := b.PathLengthRatio()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if ratio >= 1.0 || ratio < 0.6 {
			t.Errorf("%s: path-length ratio %.3f outside (0.6, 1.0)", b.Name, ratio)
		}
		t.Logf("%-16s %.3f", b.Name, ratio)
		sum += ratio
		n++
	}
	avg := sum / float64(n)
	if avg < 0.82 || avg > 0.97 {
		t.Errorf("average ratio %.3f outside [0.82, 0.97] (paper: 0.92)", avg)
	}
	t.Logf("average          %.3f (paper: 0.92)", avg)
}

func TestCallFrequencySelection(t *testing.T) {
	// The window experiments require one call per <= 500 instructions
	// (§3.1) for benchmarks marked CallFrequent.
	for _, b := range All() {
		p, err := b.Profile(minic.ABIFlat)
		if err != nil {
			t.Fatal(err)
		}
		perCall := float64(p.Stats.Insts) / float64(p.Stats.Calls+1)
		if b.CallFrequent && perCall > 500 {
			t.Errorf("%s marked call-frequent but calls every %.0f instructions", b.Name, perCall)
		}
		if !b.CallFrequent && perCall <= 500 {
			t.Errorf("%s not marked call-frequent but calls every %.0f instructions", b.Name, perCall)
		}
	}
}

func TestBenchmarkSizes(t *testing.T) {
	// Benchmarks must be big enough to exercise the pipeline and caches
	// but small enough that the full experiment matrix stays tractable.
	for _, b := range All() {
		p, err := b.Profile(minic.ABIFlat)
		if err != nil {
			t.Fatal(err)
		}
		if p.Stats.Insts < 30_000 {
			t.Errorf("%s: only %d instructions — too small to measure", b.Name, p.Stats.Insts)
		}
		if p.Stats.Insts > 3_000_000 {
			t.Errorf("%s: %d instructions — too large for the experiment matrix", b.Name, p.Stats.Insts)
		}
	}
}

func TestSuiteDiversity(t *testing.T) {
	// The clustering methodology needs behavioral spread: FP share, call
	// density, and memory density must differ across the suite.
	var minCallRate, maxCallRate = 1e9, 0.0
	fpCount := 0
	for _, b := range All() {
		p, err := b.Profile(minic.ABIFlat)
		if err != nil {
			t.Fatal(err)
		}
		rate := float64(p.Stats.Calls) / float64(p.Stats.Insts)
		if rate < minCallRate {
			minCallRate = rate
		}
		if rate > maxCallRate {
			maxCallRate = rate
		}
		if b.FP {
			fpCount++
			if p.Stats.FPOps == 0 {
				t.Errorf("%s marked FP but executes no FP ops", b.Name)
			}
		}
	}
	if fpCount < 4 {
		t.Errorf("suite has %d FP benchmarks, want >= 4", fpCount)
	}
	if maxCallRate < 4*minCallRate {
		t.Errorf("call-rate spread too small: %.4f .. %.4f", minCallRate, maxCallRate)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("crafty"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if len(CallFrequent()) == 0 {
		t.Error("no call-frequent benchmarks")
	}
}
