package workload

// Floating-point benchmarks.

// eon_rushmeier: probabilistic ray tracing — ray/sphere intersection and
// diffuse shading with the small-function call structure of the C++
// original. Ray state lives in globals (the language has no structs).
const srcEon = `
float cx[64];
float cy[64];
float cz[64];
float cr[64];
float ox; float oy; float oz;
float dx; float dy; float dz;
int seed = 9293;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

float frand() { return (float)(rnd() % 10000) / 10000.0; }

float intersect(int i) {
	// Returns distance to sphere i or -1.
	float lx = cx[i] - ox;
	float ly = cy[i] - oy;
	float lz = cz[i] - oz;
	float tca = lx * dx + ly * dy + lz * dz;
	if (tca < 0.0) { return -1.0; }
	float d2 = lx * lx + ly * ly + lz * lz - tca * tca;
	float r2 = cr[i] * cr[i];
	if (d2 > r2) { return -1.0; }
	float thc = r2 - d2;
	return tca - thc / (2.0 * cr[i]);
}

float shade(int i, float t) {
	float px = ox + dx * t;
	float py = oy + dy * t;
	float pz = oz + dz * t;
	float nx = px - cx[i];
	float ny = py - cy[i];
	float nz = pz - cz[i];
	float nlen = nx * nx + ny * ny + nz * nz;
	if (nlen <= 0.0) { return 0.0; }
	float diff = (nx + ny + nz) / nlen;
	if (diff < 0.0) { diff = 0.0 - diff; }
	return diff;
}

float trace() {
	float best = 1000000.0;
	int hit = -1;
	int i;
	for (i = 0; i < 64; i = i + 1) {
		float t = intersect(i);
		if (t > 0.0 && t < best) { best = t; hit = i; }
	}
	if (hit < 0) { return 0.0; }
	return shade(hit, best);
}

int main() {
	int i;
	for (i = 0; i < 64; i = i + 1) {
		cx[i] = frand() * 20.0 - 10.0;
		cy[i] = frand() * 20.0 - 10.0;
		cz[i] = frand() * 10.0 + 5.0;
		cr[i] = frand() * 2.0 + 0.5;
	}
	float total = 0.0;
	int ray;
	for (ray = 0; ray < 250; ray = ray + 1) {
		ox = 0.0; oy = 0.0; oz = 0.0;
		dx = frand() - 0.5;
		dy = frand() - 0.5;
		dz = 1.0;
		total = total + trace();
	}
	print_int((int)(total * 1000.0));
	return 0;
}`

// ammp: molecular dynamics — pairwise force accumulation over atom
// coordinate arrays, dominated by long inline FP loops with occasional
// helper calls (ratio 0.98: windows barely matter).
const srcAmmp = `
float px[40]; float py[40]; float pz[40];
float vx[40]; float vy[40]; float vz[40];
float fx[40]; float fy[40]; float fz[40];
int seed = 1117;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int accumulate(int i, int j, float ddx, float ddy, float ddz, float mag) {
	fx[i] = fx[i] + ddx * mag; fx[j] = fx[j] - ddx * mag;
	fy[i] = fy[i] + ddy * mag; fy[j] = fy[j] - ddy * mag;
	fz[i] = fz[i] + ddz * mag; fz[j] = fz[j] - ddz * mag;
	return i;
}

float kineticEnergy() {
	float e = 0.0;
	int i;
	for (i = 0; i < 40; i = i + 1) {
		e = e + vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
	}
	return e * 0.5;
}

int main() {
	int i;
	for (i = 0; i < 40; i = i + 1) {
		px[i] = (float)(rnd() % 100) * 0.1;
		py[i] = (float)(rnd() % 100) * 0.1;
		pz[i] = (float)(rnd() % 100) * 0.1;
	}
	float energy = 0.0;
	int step;
	for (step = 0; step < 8; step = step + 1) {
		for (i = 0; i < 40; i = i + 1) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
		// Pairwise forces: distances inline, accumulation through a leaf
		// helper (frequent cheap calls, as in the original's force loop).
		int j;
		for (i = 0; i < 40; i = i + 1) {
			for (j = i + 1; j < 40; j = j + 1) {
				float ddx = px[i] - px[j];
				float ddy = py[i] - py[j];
				float ddz = pz[i] - pz[j];
				float r2 = ddx * ddx + ddy * ddy + ddz * ddz + 0.01;
				float inv = 1.0 / r2;
				float mag = inv * inv - 0.5 * inv;
				accumulate(i, j, ddx, ddy, ddz, mag);
			}
		}
		for (i = 0; i < 40; i = i + 1) {
			vx[i] = vx[i] + fx[i] * 0.001;
			vy[i] = vy[i] + fy[i] * 0.001;
			vz[i] = vz[i] + fz[i] * 0.001;
			px[i] = px[i] + vx[i];
			py[i] = py[i] + vy[i];
			pz[i] = pz[i] + vz[i];
		}
		energy = kineticEnergy();
	}
	print_int((int)(energy * 100000.0));
	return 0;
}`

// equake: seismic wave propagation — sparse matrix-vector products with a
// helper call per row, plus a norm reduction per iteration.
const srcEquake = `
float aval[768];   // 96 rows x 8 nonzeros
int acol[768];
float x[96];
float y[96];
int seed = 60941;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

float rowDot(int r) {
	float s = 0.0;
	int k;
	for (k = 0; k < 8; k = k + 1) {
		s = s + aval[r * 8 + k] * x[acol[r * 8 + k]];
	}
	return s;
}

float smooth(int r) {
	// Mid-tier: row product plus damping, live across the helper call.
	float prev = y[r];
	float v = rowDot(r);
	float damped = 0.85 * v + 0.15 * prev;
	y[r] = damped;
	return damped;
}

float norm() {
	float s = 0.0;
	int i;
	for (i = 0; i < 96; i = i + 1) { s = s + y[i] * y[i]; }
	return fsqrtv(s);
}

float fsqrtv(float v) {
	// Newton refinement seeded at v/2 (exercises FP divide chains).
	if (v <= 0.0) { return 0.0; }
	float g = v * 0.5 + 0.001;
	int i;
	for (i = 0; i < 4; i = i + 1) { g = 0.5 * (g + v / g); }
	return g;
}

int main() {
	int i;
	for (i = 0; i < 768; i = i + 1) {
		aval[i] = (float)(rnd() % 200) * 0.01 - 1.0;
		acol[i] = rnd() % 96;
	}
	for (i = 0; i < 96; i = i + 1) { x[i] = (float)(rnd() % 100) * 0.01; }

	float res = 0.0;
	int iter;
	for (iter = 0; iter < 45; iter = iter + 1) {
		int r;
		for (r = 0; r < 96; r = r + 1) { smooth(r); }
		res = norm();
		for (r = 0; r < 96; r = r + 1) { x[r] = 0.9 * x[r] + 0.1 * y[r] / (res + 1.0); }
	}
	print_int((int)(res * 1000.0));
	return 0;
}`

// mesa: 3-D graphics software pipeline — per-vertex matrix transform and
// lighting through small per-vertex functions.
const srcMesa = `
float vxs[256]; float vys[256]; float vzs[256];
float txs[256]; float tys[256]; float tzs[256];
float lum[256];
float mat[16];
int seed = 777213;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

float transform(int i) {
	float xx = vxs[i];
	float yy = vys[i];
	float zz = vzs[i];
	txs[i] = mat[0] * xx + mat[1] * yy + mat[2] * zz + mat[3];
	tys[i] = mat[4] * xx + mat[5] * yy + mat[6] * zz + mat[7];
	tzs[i] = mat[8] * xx + mat[9] * yy + mat[10] * zz + mat[11];
	return tzs[i];
}

float light(int i) {
	float nz = tzs[i];
	if (nz < 0.0) { nz = 0.0 - nz; }
	float l = nz / (1.0 + nz);
	lum[i] = l;
	return l;
}

float processVertex(int i) {
	// Mid-tier per-vertex pipeline stage.
	float depth = transform(i);
	if (!clipTest(i)) { return 0.0 - 1.0; }
	float l = light(i);
	return l + depth * 0.0001;
}

int clipTest(int i) {
	if (txs[i] < -100.0 || txs[i] > 100.0) { return 0; }
	if (tys[i] < -100.0 || tys[i] > 100.0) { return 0; }
	return 1;
}

int main() {
	int i;
	for (i = 0; i < 256; i = i + 1) {
		vxs[i] = (float)(rnd() % 200) - 100.0;
		vys[i] = (float)(rnd() % 200) - 100.0;
		vzs[i] = (float)(rnd() % 100) * 0.1 + 1.0;
	}
	float total = 0.0;
	int visible = 0;
	int frame;
	for (frame = 0; frame < 22; frame = frame + 1) {
		// Slowly rotating transform.
		float a = (float)frame * 0.05;
		mat[0] = 1.0 - a * a * 0.5; mat[1] = 0.0 - a; mat[2] = 0.0; mat[3] = 0.0;
		mat[4] = a; mat[5] = 1.0 - a * a * 0.5; mat[6] = 0.0; mat[7] = 0.0;
		mat[8] = 0.0; mat[9] = 0.0; mat[10] = 1.0; mat[11] = 0.5;
		for (i = 0; i < 256; i = i + 1) {
			float v = processVertex(i);
			if (v >= 0.0) {
				total = total + v;
				visible = visible + 1;
			}
		}
	}
	print_int((int)total);
	print_int(visible);
	return 0;
}`

// wupwise: lattice QCD flavor — complex matrix-vector arithmetic in
// split real/imaginary arrays with a helper call per complex
// multiply-accumulate.
const srcWupwise = `
float mr[256]; float mi[256];   // 16x16 complex matrix
float xr[16]; float xi[16];
float yr[16]; float yi[16];
float accR; float accI;
int seed = 3533;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int cmulAcc(int mIdx, int v) {
	// (accR, accI) += M[mIdx] * x[v]
	float ar = mr[mIdx];
	float ai = mi[mIdx];
	float br = xr[v];
	float bi = xi[v];
	accR = accR + ar * br - ai * bi;
	accI = accI + ar * bi + ai * br;
	return mIdx;
}

float rowMul(int r) {
	// Mid-tier: accumulator setup and magnitude live across the calls.
	accR = 0.0;
	accI = 0.0;
	int c;
	for (c = 0; c < 16; c = c + 1) { cmulAcc(r * 16 + c, c); }
	yr[r] = accR;
	yi[r] = accI;
	return accR * accR + accI * accI;
}

float matVec() {
	int r;
	float sum = 0.0;
	for (r = 0; r < 16; r = r + 1) {
		sum = sum + rowMul(r);
	}
	return sum;
}

int main() {
	int i;
	for (i = 0; i < 256; i = i + 1) {
		mr[i] = (float)(rnd() % 100) * 0.02 - 1.0;
		mi[i] = (float)(rnd() % 100) * 0.02 - 1.0;
	}
	for (i = 0; i < 16; i = i + 1) {
		xr[i] = (float)(rnd() % 100) * 0.01;
		xi[i] = (float)(rnd() % 100) * 0.01;
	}
	float s = 0.0;
	int iter;
	for (iter = 0; iter < 80; iter = iter + 1) {
		s = matVec();
		// Normalize x from y.
		float scale = 1.0 / (1.0 + s * 0.001);
		for (i = 0; i < 16; i = i + 1) {
			xr[i] = yr[i] * scale;
			xi[i] = yi[i] * scale;
		}
	}
	print_int((int)(s * 100.0));
	return 0;
}`
