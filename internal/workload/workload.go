// Package workload provides the benchmark suite: fifteen synthetic
// programs written in mini-C, each named for a member of the paper's
// Table 2 benchmark set and calibrated to a similar point in the space
// that drives the evaluation — call frequency (which sets the windowed/
// flat path-length ratio), memory behavior, branch behavior, and integer
// versus floating-point mix. Every benchmark builds under both ABIs and
// prints a checksum so functional correctness is externally observable.
package workload

import (
	"fmt"
	"sync"

	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/program"
)

// Benchmark is one suite member.
type Benchmark struct {
	Name string
	FP   bool
	// CallFrequent marks benchmarks that call at least once every ~500
	// instructions; the register-window experiments use only these
	// (§3.1).
	CallFrequent bool
	Source       string
}

// All returns the full suite in a stable order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "bzip2_graphic", Source: srcBzip2, CallFrequent: true},
		{Name: "crafty", Source: srcCrafty, CallFrequent: true},
		{Name: "eon_rushmeier", Source: srcEon, FP: true, CallFrequent: true},
		{Name: "gap", Source: srcGap, CallFrequent: true},
		{Name: "gcc_expr", Source: srcGccExpr, CallFrequent: true},
		{Name: "gzip_graphic", Source: srcGzip, CallFrequent: true},
		{Name: "parser", Source: srcParser, CallFrequent: true},
		{Name: "perlbmk_535", Source: srcPerlbmk, CallFrequent: true},
		{Name: "twolf", Source: srcTwolf, CallFrequent: true},
		{Name: "vortex_2", Source: srcVortex, CallFrequent: true},
		{Name: "vpr_route", Source: srcVprRoute, CallFrequent: true},
		{Name: "ammp", Source: srcAmmp, FP: true, CallFrequent: true},
		{Name: "equake", Source: srcEquake, FP: true, CallFrequent: true},
		{Name: "mesa", Source: srcMesa, FP: true, CallFrequent: true},
		{Name: "wupwise", Source: srcWupwise, FP: true, CallFrequent: true},
	}
}

// ByName returns a benchmark by name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// CallFrequent filters the suite to benchmarks that call often enough for
// register windows to matter — the §3.1 selection rule ("at least once
// every 500 instructions").
func CallFrequent() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.CallFrequent {
			out = append(out, b)
		}
	}
	return out
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*program.Program{}
)

// Build compiles the benchmark under an ABI (cached).
func (b Benchmark) Build(abi minic.ABI) (*program.Program, error) {
	key := b.Name + "/" + abi.String()
	buildMu.Lock()
	defer buildMu.Unlock()
	if p, ok := buildCache[key]; ok {
		return p, nil
	}
	p, err := minic.Build(b.Name, b.Source, abi)
	if err != nil {
		return nil, err
	}
	buildCache[key] = p
	return p, nil
}

// Profile holds the functional-simulation measurements of one benchmark
// under one ABI (the quantities §3.1-3.2 need).
type Profile struct {
	Stats  emu.Stats
	Output string
}

var (
	profMu    sync.Mutex
	profCache = map[string]*Profile{}
)

// Profile runs the benchmark to completion on the functional emulator
// (cached) and returns its dynamic statistics.
func (b Benchmark) Profile(abi minic.ABI) (*Profile, error) {
	key := b.Name + "/" + abi.String()
	profMu.Lock()
	defer profMu.Unlock()
	if p, ok := profCache[key]; ok {
		return p, nil
	}
	prog, err := b.Build(abi)
	if err != nil {
		return nil, err
	}
	m := emu.New(prog, emu.Config{Windowed: abi == minic.ABIWindowed, MaxInsts: 1 << 32})
	reason, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("workload %s (%v): %w", b.Name, abi, err)
	}
	if reason != emu.StopExited {
		return nil, fmt.Errorf("workload %s (%v): stopped: %v", b.Name, abi, reason)
	}
	if code, _ := m.Exited(); !code {
		return nil, fmt.Errorf("workload %s: did not exit", b.Name)
	}
	p := &Profile{Stats: m.Stats, Output: m.Output.String()}
	profCache[key] = p
	return p, nil
}

// PathLengthRatio returns dynamic-instruction-count(windowed) divided by
// dynamic-instruction-count(flat) — one row of Table 2.
func (b Benchmark) PathLengthRatio() (float64, error) {
	flat, err := b.Profile(minic.ABIFlat)
	if err != nil {
		return 0, err
	}
	win, err := b.Profile(minic.ABIWindowed)
	if err != nil {
		return 0, err
	}
	if flat.Output != win.Output {
		return 0, fmt.Errorf("workload %s: ABI outputs differ: %q vs %q", b.Name, flat.Output, win.Output)
	}
	return float64(win.Stats.Insts) / float64(flat.Stats.Insts), nil
}
