// Regwindows compares the paper's four register-window architectures
// (Figure 4's cast) on a call-heavy recursive workload: the conventional
// baseline, trap-based hardware windows, idealized windows, and VCA.
package main

import (
	"fmt"
	"log"

	vca "vca"
)

// A call-dense workload: recursive tree summation with per-node helper
// calls, the pattern register windows exist for.
const source = `
int values[2048];
int seed = 99;

int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int weight(int v) { return (v & 15) + 1; }

int sumRange(int lo, int hi) {
	if (hi - lo <= 4) {
		int s = 0;
		int i;
		for (i = lo; i < hi; i = i + 1) { s = s + weight(values[i]); }
		return s;
	}
	int mid = lo + (hi - lo) / 2;
	int left = sumRange(lo, mid);
	int right = sumRange(mid, hi);
	return left + right;
}

int main() {
	int i;
	for (i = 0; i < 2048; i = i + 1) { values[i] = rnd(); }
	int total = 0;
	for (i = 0; i < 30; i = i + 1) { total = (total + sumRange(0, 2048)) & 0xffffff; }
	print_int(total);
	return 0;
}`

func main() {
	flat, err := vca.CompileC(source, vca.ABIFlat)
	if err != nil {
		log.Fatal(err)
	}
	windowed, err := vca.CompileC(source, vca.ABIWindowed)
	if err != nil {
		log.Fatal(err)
	}
	_, flatLen, err := vca.Emulate(flat, false)
	if err != nil {
		log.Fatal(err)
	}
	_, winLen, err := vca.Emulate(windowed, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path length: flat=%d windowed=%d ratio=%.3f\n\n", flatLen, winLen,
		float64(winLen)/float64(flatLen))

	type entry struct {
		name string
		arch vca.Arch
		prog *vca.Program
		len  uint64
	}
	machines := []entry{
		{"baseline (no windows)", vca.Baseline, flat, flatLen},
		{"conventional windows", vca.ConvWindowed, windowed, winLen},
		{"ideal windows", vca.IdealWindowed, windowed, winLen},
		{"vca windows", vca.VCAWindowed, windowed, winLen},
	}

	for _, regs := range []int{128, 256} {
		fmt.Printf("--- %d physical registers ---\n", regs)
		var baseTime float64
		for _, m := range machines {
			res, err := vca.Run(vca.MachineSpec{Arch: m.arch, PhysRegs: regs}, m.prog)
			if err != nil {
				fmt.Printf("%-24s cannot run (%v)\n", m.name, err)
				continue
			}
			cpi := float64(res.Cycles) / float64(res.Threads[0].Committed)
			time := cpi * float64(m.len)
			if m.arch == vca.Baseline {
				baseTime = time
			}
			rel := time / baseTime
			fmt.Printf("%-24s CPI=%.3f est.time=%.0f (%.2fx baseline) dcache=%d traps=%d spills+fills=%d\n",
				m.name, cpi, time, rel, res.DL1.TotalAccesses(), res.WindowTraps,
				res.SpillsIssued+res.FillsIssued)
		}
		fmt.Println()
	}
}
