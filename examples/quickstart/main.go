// Quickstart: compile a small program with the bundled mini-C compiler,
// run it functionally, then run it on the cycle-level VCA machine and
// compare — the simplest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	vca "vca"
)

const source = `
int fib(int n) {
	if (n <= 1) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() {
	print_str("fib(20) = ");
	print_int(fib(20));
	print_str("\n");
	return 0;
}`

func main() {
	// Compile under the windowed ABI: calls rotate the register window,
	// so the binary contains no callee-save loads or stores.
	prog, err := vca.CompileC(source, vca.ABIWindowed)
	if err != nil {
		log.Fatal(err)
	}

	// Functional run: instant, architecturally exact.
	out, insts, err := vca.Emulate(prog, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional: %s  (%d instructions)\n", out, insts)

	// Cycle-level run on the virtual context architecture with just 128
	// physical registers — fewer than two full architectural contexts.
	res, err := vca.Run(vca.MachineSpec{Arch: vca.VCAWindowed, PhysRegs: 128}, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vca machine: %s  (%d cycles, IPC %.2f, %d spills, %d fills)\n",
		res.Output(0), res.Cycles, res.IPC(), res.SpillsIssued, res.FillsIssued)
}
