// SMT runs a four-program multiprogrammed workload on the virtual context
// architecture with fewer physical registers than the four threads'
// architectural state (the §4.2 headline: 4 threads x 64 logical registers
// on a 192-entry physical file), and shows that the conventional machine
// cannot even be built at that size.
package main

import (
	"fmt"
	"log"

	vca "vca"
	"vca/internal/minic"
	"vca/internal/workload"
)

func main() {
	names := []string{"crafty", "gzip_graphic", "mesa", "vpr_route"}
	var progs []*vca.Program
	for _, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		p, err := b.Build(minic.ABIFlat)
		if err != nil {
			log.Fatal(err)
		}
		progs = append(progs, p)
	}

	const regs = 192
	fmt.Printf("4-thread workload %v on %d physical registers\n\n", names, regs)

	// The conventional machine needs > 4 x 64 = 256 physical registers.
	if _, err := vca.Run(vca.MachineSpec{Arch: vca.Baseline, PhysRegs: regs, StopAfter: 50_000}, progs...); err != nil {
		fmt.Printf("conventional SMT: %v\n\n", err)
	}

	res, err := vca.Run(vca.MachineSpec{Arch: vca.VCAFlat, PhysRegs: regs, StopAfter: 200_000}, progs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vca SMT: %d cycles, aggregate IPC %.2f\n", res.Cycles, res.IPC())
	for i, t := range res.Threads {
		fmt.Printf("  thread %d (%s): committed=%d CPI=%.2f\n", i, names[i], t.Committed, t.CPI)
	}
	fmt.Printf("  spills=%d fills=%d (the register state the physical file cannot hold lives in memory)\n",
		res.SpillsIssued, res.FillsIssued)

	// For contrast: the conventional machine at its minimum viable size.
	res2, err := vca.Run(vca.MachineSpec{Arch: vca.Baseline, PhysRegs: 320, StopAfter: 200_000}, progs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconventional SMT needs 320 registers: %d cycles, aggregate IPC %.2f\n",
		res2.Cycles, res2.IPC())
}
