// Contextswitch demonstrates §2.1.4/§6 at the renamer level: with VCA, a
// "context switch" is nothing but a base-pointer change. Two software
// contexts' registers live simultaneously in one small physical register
// file as cache entries; switching contexts requires no save/restore —
// values spill and fill lazily, on demand, as the working sets compete.
package main

import (
	"fmt"

	"vca/internal/rename"
)

func main() {
	cfg := rename.DefaultVCAConfig(1, 24) // just 24 physical registers
	v := rename.NewVCA(cfg)
	values := map[int]uint64{}
	v.ReadValue = func(p int) uint64 { return values[p] }
	memory := map[uint64]uint64{}

	// Two contexts, each with 16 logical registers, memory-mapped at
	// different base pointers — together 32 logical registers on a
	// 24-entry physical file.
	baseA := uint64(0x1000)
	baseB := uint64(0x2000)
	regAddr := func(base uint64, r int) uint64 { return base + 8*uint64(r) }

	write := func(base uint64, r int, val uint64, tag string) {
		var ops []rename.MemOp
		phys, prev, ok := v.RenameDest(regAddr(base, r), &ops)
		if !ok {
			panic("stall")
		}
		for _, op := range ops {
			if op.IsSpill {
				memory[op.Addr] = op.Value
				fmt.Printf("  [spill r%d of %s -> mem[%#x]]\n", int(op.Addr%0x1000)/8, tag, op.Addr)
			}
		}
		values[phys] = val
		v.CommitDest(regAddr(base, r), phys, prev)
	}
	read := func(base uint64, r int, tag string) uint64 {
		var ops []rename.MemOp
		phys, filled, ok := v.RenameSource(regAddr(base, r), &ops)
		if !ok {
			panic("stall")
		}
		for _, op := range ops {
			if op.IsSpill {
				memory[op.Addr] = op.Value
			}
		}
		if filled {
			values[phys] = memory[regAddr(base, r)]
			fmt.Printf("  [fill r%d of %s <- mem[%#x]]\n", r, tag, regAddr(base, r))
		}
		val := values[phys]
		v.ReleaseSource(phys)
		v.ReleaseRetired(phys)
		return val
	}

	fmt.Println("context A: writing r0..r15")
	for r := 0; r < 16; r++ {
		write(baseA, r, uint64(100+r), "A")
	}

	fmt.Println("context switch to B: just a different base pointer — no save/restore")
	for r := 0; r < 16; r++ {
		write(baseB, r, uint64(200+r), "B")
	}

	fmt.Println("switch back to A: spilled values fill back on demand")
	sum := uint64(0)
	for r := 0; r < 16; r++ {
		sum += read(baseA, r, "A")
	}
	fmt.Printf("context A sum = %d (want %d)\n", sum, 16*100+15*16/2)

	fmt.Println("and B's registers are still warm where they fit:")
	sum = 0
	for r := 0; r < 16; r++ {
		sum += read(baseB, r, "B")
	}
	fmt.Printf("context B sum = %d (want %d)\n", sum, 16*200+15*16/2)

	if err := v.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("renamer invariants hold")
}
