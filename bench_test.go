// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design decisions DESIGN.md calls out
// and micro-benchmarks of the simulator substrates.
//
// Figure benches run a reduced experiment matrix (smaller commit budgets
// than cmd/experiments) and report the figure's headline numbers through
// b.ReportMetric, so `go test -bench=.` regenerates the shape of every
// result. Use cmd/experiments for the full-budget tables.
package vca

import (
	"testing"

	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/experiments"
	"vca/internal/mem"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/rename"
	"vca/internal/workload"
)

const benchStop = 40_000 // per-run commit budget for figure benches

// BenchmarkTable1Baseline measures the baseline machine of Table 1 running
// one representative benchmark; the metric of record is its IPC.
func BenchmarkTable1Baseline(b *testing.B) {
	bench, err := workload.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		met, err := experiments.RunSingle(bench, experiments.ArchBaseline, 256, 2, benchStop)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1/met.CPI, "IPC")
	}
}

// BenchmarkTable2PathLength recomputes the Table 2 ratios from complete
// functional runs and reports the suite average (paper: 0.92).
func BenchmarkTable2PathLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, avg, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg, "avg-ratio")
	}
}

func sweepMetrics(b *testing.B, ports int) {
	b.Helper()
	cells, err := experiments.RegWindowSweep(ports, benchStop)
	if err != nil {
		b.Fatal(err)
	}
	base256, _ := experiments.Cell(cells, experiments.ArchBaseline, 256)
	vca256, _ := experiments.Cell(cells, experiments.ArchVCAWindow, 256)
	vca128, _ := experiments.Cell(cells, experiments.ArchVCAWindow, 128)
	base128, _ := experiments.Cell(cells, experiments.ArchBaseline, 128)
	ideal256, _ := experiments.Cell(cells, experiments.ArchIdealWindow, 256)
	b.ReportMetric(vca256.NormTime/base256.NormTime, "vca/base-time@256")
	b.ReportMetric(vca128.NormTime/base128.NormTime, "vca/base-time@128")
	b.ReportMetric(vca256.NormTime/ideal256.NormTime, "vca/ideal-time@256")
	b.ReportMetric(vca256.NormAccesses/base256.NormAccesses, "vca/base-dcache@256")
}

// BenchmarkFig4RegisterWindows regenerates Figure 4's sweep (dual-port)
// and reports the paper's headline ratios: VCA vs baseline execution time
// at 256 and 128 registers (paper: 0.96 and 0.91) and VCA vs ideal
// (paper: 1.01).
func BenchmarkFig4RegisterWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepMetrics(b, 2)
	}
}

// BenchmarkFig5CacheAccesses reports Figure 5's headline: VCA's data-cache
// accesses relative to the baseline at 256 registers (paper: ~0.80).
func BenchmarkFig5CacheAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RegWindowSweep(2, benchStop)
		if err != nil {
			b.Fatal(err)
		}
		base256, _ := experiments.Cell(cells, experiments.ArchBaseline, 256)
		vca256, _ := experiments.Cell(cells, experiments.ArchVCAWindow, 256)
		conv128, ok := experiments.Cell(cells, experiments.ArchConvWindow, 128)
		b.ReportMetric(vca256.NormAccesses/base256.NormAccesses, "vca/base@256")
		if ok {
			b.ReportMetric(conv128.NormAccesses, "conv-window@128")
		}
	}
}

// BenchmarkFig6SinglePort regenerates Figure 6: single-DL1-port execution
// time, still normalized against the dual-port baseline. The paper's
// headline: single-port VCA ~= dual-port baseline at 256 registers.
func BenchmarkFig6SinglePort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepMetrics(b, 1)
	}
}

func smtBench(b *testing.B, windowed bool) {
	b.Helper()
	opts := experiments.SMTOptions{
		K2: 3, K4: 3, StopAfter: benchStop,
		Sizes:    []int{192, 320, 448},
		Windowed: windowed,
	}
	cells, err := experiments.SMTSweep(opts)
	if err != nil {
		b.Fatal(err)
	}
	v4, _ := experiments.SMTCellFor(cells, "vca 4T", 192)
	b4, ok := experiments.SMTCellFor(cells, "baseline 4T", 448)
	if ok {
		b.ReportMetric(v4.Speedup/b4.Speedup, "vca4T@192/base4T@448")
	}
	v2, _ := experiments.SMTCellFor(cells, "vca 2T", 192)
	b2, ok2 := experiments.SMTCellFor(cells, "baseline 2T", 320)
	if ok2 {
		b.ReportMetric(v2.Speedup/b2.Speedup, "vca2T@192/base2T@320")
	}
	b.ReportMetric(v4.Accesses, "weighted-dcache-4T@192")
}

// BenchmarkFig7SMT regenerates Figure 7 (non-windowed SMT): VCA at 192
// registers versus the conventional machine at its full sizes (paper:
// 97-98.7%).
func BenchmarkFig7SMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		smtBench(b, false)
	}
}

// BenchmarkFig8SMTWindows regenerates Figure 8 (SMT + register windows on
// VCA).
func BenchmarkFig8SMTWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		smtBench(b, true)
	}
}

// BenchmarkFig8CacheAccesses reports the §4.3 claim: adding windows cuts
// the 4-thread VCA machine's cache accesses substantially (paper: ~23%).
func BenchmarkFig8CacheAccesses(b *testing.B) {
	opts := experiments.SMTOptions{K2: 3, K4: 3, StopAfter: benchStop, Sizes: []int{192}}
	for i := 0; i < b.N; i++ {
		flat, err := experiments.SMTSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		wopts := opts
		wopts.Windowed = true
		win, err := experiments.SMTSweep(wopts)
		if err != nil {
			b.Fatal(err)
		}
		f4, _ := experiments.SMTCellFor(flat, "vca 4T", 192)
		w4, _ := experiments.SMTCellFor(win, "vca 4T", 192)
		b.ReportMetric(w4.Accesses/f4.Accesses, "windowed/flat-dcache-4T")
	}
}

// --- Ablations (design decisions from DESIGN.md §4) ---

func runVCAVariant(b *testing.B, mutate func(*core.Config)) uint64 {
	b.Helper()
	bench, err := workload.ByName("gcc_expr")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bench.Build(minic.ABIWindowed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.RenameVCA, core.WindowVCA, 1, 128)
	cfg.StopAfter = benchStop
	mutate(&cfg)
	m, err := core.New(cfg, []*program.Program{prog}, true)
	if err != nil {
		b.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkAblationRenameAssoc sweeps the VCA rename table associativity
// (§2.1.1: "a four-way set associative table provides good performance").
func BenchmarkAblationRenameAssoc(b *testing.B) {
	for _, ways := range []int{2, 3, 4, 6} {
		ways := ways
		b.Run("ways="+itoa(ways), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cyc := runVCAVariant(b, func(c *core.Config) { c.VCA.Ways = ways })
				b.ReportMetric(float64(cyc), "cycles")
			}
		})
	}
}

// BenchmarkAblationASTQDepth sweeps the ASTQ size (§2.2.2: "only four
// entries are required to provide maximum benefit").
func BenchmarkAblationASTQDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8, 16} {
		depth := depth
		b.Run("depth="+itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cyc := runVCAVariant(b, func(c *core.Config) { c.ASTQSize = depth })
				b.ReportMetric(float64(cyc), "cycles")
			}
		})
	}
}

// BenchmarkAblationOverwriteHint toggles the replacement demotion of
// overwrite-pending registers (§2.1.2).
func BenchmarkAblationOverwriteHint(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cyc := runVCAVariant(b, func(c *core.Config) { c.VCA.OverwriteHint = on })
				b.ReportMetric(float64(cyc), "cycles")
			}
		})
	}
}

// BenchmarkAblationRecoveryWalk toggles the Pentium-4-style commit-table
// walk charged on mispredictions (§2.1.3).
func BenchmarkAblationRecoveryWalk(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cyc := runVCAVariant(b, func(c *core.Config) { c.RecoveryWalk = on })
				b.ReportMetric(float64(cyc), "cycles")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Substrate micro-benchmarks (simulator performance itself) ---

// BenchmarkEmulator measures functional-simulation speed in simulated
// instructions per wall second (reported as ns per simulated instruction).
func BenchmarkEmulator(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	prog, err := bench.Build(minic.ABIFlat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(prog, emu.Config{})
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		insts += m.Stats.Insts
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
}

// BenchmarkEmuFastRun measures the fast functional engine (predecoded
// micro-op array, tight dispatch loop — the fast-forward path) on the
// same workload as BenchmarkSimThroughput. Each op is exactly 100k
// executed instructions, so ns/op / 100000 is ns per simulated
// instruction; cmd/benchsmoke gates both this engine's absolute
// throughput and its speedup over the detailed core.
func BenchmarkEmuFastRun(b *testing.B) {
	bench, err := workload.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bench.Build(minic.ABIFlat)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 100_000
	m := emu.New(prog, emu.Config{})
	if _, err := m.FastRun(budget); err != nil { // warm up: predecode, touch pages
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		need := uint64(budget)
		for need > 0 {
			ran, err := m.FastRun(need)
			if err != nil {
				b.Fatal(err)
			}
			need -= ran
			if ex, _ := m.Exited(); ex {
				m = emu.New(prog, emu.Config{})
			}
		}
		insts += budget
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
	if sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "funcMIPS")
	}
}

// BenchmarkSimThroughput is the repo's tracked perf headline: simulated
// MIPS (committed instructions per host second) of the detailed core on
// the cmd/experiments entry-point configuration, co-simulation on — the
// exact mode every table and figure pays for. cmd/experiments -benchjson
// records the same quantity to BENCH_*.json; keep the two in sync.
func BenchmarkSimThroughput(b *testing.B) {
	bench, err := workload.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bench.Build(minic.ABIFlat)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.RenameConventional, core.WindowNone, 1, 256)
	cfg.StopAfter = 100_000
	cfg.MaxCycles = 1 << 34
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := core.New(cfg, []*program.Program{prog}, false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Threads[0].Committed
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "simMIPS")
	}
}

// BenchmarkCorePipeline measures detailed-simulation speed.
func BenchmarkCorePipeline(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	prog, err := bench.Build(minic.ABIFlat)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.RenameVCA, core.WindowNone, 1, 128)
	cfg.StopAfter = 100_000
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := core.New(cfg, []*program.Program{prog}, false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Threads[0].Committed
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
}

// BenchmarkVCARenameOps measures raw renamer throughput.
func BenchmarkVCARenameOps(b *testing.B) {
	v := rename.NewVCA(rename.DefaultVCAConfig(1, 128))
	v.ReadValue = func(int) uint64 { return 0 }
	var ops []rename.MemOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(0x1000 + 8*(i%256))
		ops = ops[:0]
		p, _, ok := v.RenameSource(addr, &ops)
		if ok {
			v.ReleaseSource(p)
			v.ReleaseRetired(p)
		}
	}
}

// BenchmarkCacheAccess measures the timing-cache hot path.
func BenchmarkCacheAccess(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DataAccess(uint64(i*64%(1<<20)), i%4 == 0, mem.CauseProgram)
	}
}
